type persona = Chatgpt | Claude_llm | Gemini

let personas = [ Chatgpt; Claude_llm; Gemini ]

let name = function
  | Chatgpt -> "ChatGPT-4o"
  | Claude_llm -> "Claude-3.7-Sonnet"
  | Gemini -> "Gemini-2.0-Flash"

(* Deterministic "judgement noise" per (persona, code). *)
let noise persona code tag =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3fffffff) (name persona ^ tag ^ code);
  float_of_int !h /. 1073741824.0

(* --- detection ----------------------------------------------------------- *)

(* Overt dangerous-API signals every competent reviewer flags. *)
let strong_signals =
  List.map Rx.compile
    [
      {|\beval\(|}; {|\bexec\(|}; {|pickle\.loads?\(|}; {|marshal\.loads\(|};
      {|jsonpickle\.decode\(|}; {|yaml\.load\(|}; {|hashlib\.(?:md5|sha1)\(|};
      {|shell\s*=\s*True|}; {|os\.system\(|}; {|os\.popen\(|};
      {|verify\s*=\s*False|}; {|debug\s*=\s*True|}; {|tempfile\.mktemp\(|};
      {|telnetlib\.|}; {|ftplib\.FTP\(|}; {|AutoAddPolicy\(\)|};
      {|\.execute\(\s*f?"[^"\n]*(?:\{|%s)|}; {|\.execute\(\s*"[^"\n]*"\s*(?:\+|%)|};
      {|(?:password|passwd|pwd)\s*=\s*["'][^"'\n]+["']|};
      {|SECRET_KEY\w*\s*=\s*["']|}; {|secret_key\s*=\s*["']|};
      {|\.extractall\(|}; {|uuid\.uuid1\(|}; {|PROTOCOL_(?:SSLv|TLSv1)|};
      {|_create_unverified_context|}; {|cert_reqs\s*=\s*ssl\.CERT_NONE|};
      {|check_hostname\s*=\s*False|}; {|resolve_entities\s*=\s*True|};
      {|xml\.(?:etree|dom|sax)|}; {|verify\s*=\s*False|};
      {|redirect\(\s*request\.|}; {|send_file\(\s*request\.|};
      {|\*\*request\.(?:json|form|args)|}; {|os\.chmod\([^)\n]*0o7|};
      {|os\.umask\(\s*0\s*\)|}; {|^DEBUG\s*=\s*True|}; {|str\(time\.time\(\)\)|};
      {|jwt\.decode\([^)\n]*verify\s*=\s*False|}; {|host\s*=\s*["']0\.0\.0\.0|};
      {|RSA\.generate\(\s*(?:512|768|1024)|}; {|MODE_ECB|}; {|DES3?\.new|};
      {|ARC4\.new|}; {|query\s*=\s*f?"[^"\n]*(?:\{|%s)|};
      {|html\s*=\s*f"<|}; {|return\s+f"<[^"\n]*\{|};
      {|make_response\(f"[^"\n]*\{|}; {|logging\.\w+\(f"[^"\n]*[Pp]assword|};
      {|return\s+str\(e|}; {|traceback\.format_exc\(\)|};
      {|open\(\s*request\.|}; {|random\.(?:randint|getrandbits|choice|randrange)\(|};
    ]

(* Semantic weaknesses the LLMs reason about but lexical rules miss. *)
let semantic_signals =
  List.map Rx.compile
    [
      {|int\(request\.args|};
      {|os\.access\(|};
      {|session\.permanent\s*=\s*True|};
      {|"no such user"|};
      {|"wrong password"|};
      {|salt\s*=\s*b"|};
      {|IV\s*=\s*b"|};
      {|string\.split\(|};
      {|session\[["']role["']\]\s*=\s*request\.|};
      {|writer\.writerow\(\[row\.|};
      {|==\s*expected|};
      {|"ssn"|"salary"|"address"|"phone"|};
    ]

(* Benign-looking-but-suspicious signals: these drive the false
   positives.  A cautious human would check the context; the ZS-RO
   prompt's yes/no format encourages flagging. *)
let weak_signals =
  List.map Rx.compile
    [
      {|subprocess\.|}; {|request\.(?:args|form|files|json)|}; {|\bopen\(|};
      {|password|}; {|http://|}; {|random\.|}; {|hashlib\.|}; {|\.set_cookie\(|};
      {|SELECT |}; {|os\.environ|}; {|\.save\(|}; {|assert\s|};
    ]

let count_hits signals code =
  List.length (List.filter (fun rx -> Rx.matches rx code) signals)

let flags persona code =
  let strong = count_hits strong_signals code > 0 in
  let semantic = count_hits semantic_signals code > 0 in
  let weak = count_hits weak_signals code in
  match persona with
  | Chatgpt ->
    (* balanced: overt or semantic issues, plus suspicion-driven guessing
       on code dense with sensitive APIs *)
    strong || semantic || (weak >= 2 && noise persona code "guess" < 0.60)
  | Claude_llm ->
    (* most careful reviewer: still flags benign-dense code at times *)
    strong || semantic || (weak >= 2 && noise persona code "guess" < 0.45)
  | Gemini ->
    (* most trigger-happy: anything touching a sensitive API is "Yes" *)
    strong || semantic
    || (weak >= 1 && noise persona code "guess" < 0.80)

let detector persona =
  {
    Baseline.name = name persona;
    detect =
      (fun code ->
        if flags persona code then
          {
            Baseline.vulnerable = true;
            findings =
              [ { Baseline.check = "llm-review"; line = 1;
                  message = "model judged the code vulnerable";
                  fix = Baseline.Rewrite_offered } ];
            analyzed = true;
          }
        else Baseline.clean);
  }

(* --- patching ------------------------------------------------------------- *)

(* The API-level replacements the models reliably produce. *)
let common_replacements =
  [
    ({|debug\s*=\s*True|}, "debug=False");
    ({|shell\s*=\s*True|}, "shell=False");
    ({|hashlib\.md5\(|}, "hashlib.sha256(");
    ({|hashlib\.sha1\(|}, "hashlib.sha256(");
    ({|yaml\.load\(([^)\n]*)\)|}, "yaml.safe_load($1)");
    ({|pickle\.loads\(([^)\n]*)\)|}, "json.loads($1)");
    ({|pickle\.load\(([^)\n]*)\)|}, "json.load($1)");
    ({|verify\s*=\s*False|}, "verify=True");
    ({|tempfile\.mktemp\(|}, "tempfile.mkstemp(");
    ({|\beval\(|}, "ast.literal_eval(");
    ({|uuid\.uuid1\(\)|}, "uuid.uuid4()");
    ({|_create_unverified_context|}, "create_default_context");
    ({|AutoAddPolicy\(\)|}, "RejectPolicy()");
    ({|httponly\s*=\s*False|}, "httponly=True");
    ({|os\.umask\(\s*0\s*\)|}, "os.umask(0o077)");
    ({|^DEBUG\s*=\s*True|}, "DEBUG = False");
    ({|MODE_ECB|}, "MODE_GCM");
    ({|(\.set_cookie\("[^"\n]*",\s*(?:\w+\(\)|[\w.]+)\s*)\)|},
     "$1, secure=True, httponly=True)");
    ({|host\s*=\s*["']0\.0\.0\.0["']|}, {|host="127.0.0.1"|});
    ({|WTF_CSRF_ENABLED["'\]]*\s*=\s*\)?False|}, {|WTF_CSRF_ENABLED"] = True|});
  ]

(* Extra replacements only the stronger reviewers tend to land. *)
let advanced_replacements =
  [
    ({|os\.system\(([^)\n]*)\)|}, "subprocess.run(shlex.split($1))");
    ({|return\s+f"<p>(?:Hello )?\{(\w+)\}</p>"|},
     {|return f"<p>{escape($1)}</p>"|});
    ({|\.execute\(f"([^"\n]*)\{(\w+)\}'"\)|}, {|.execute("$1?", ($2,))|});
    ({|str\(time\.time\(\)\)|}, "secrets.token_urlsafe(32)");
    ({|ftplib\.FTP\(|}, "ftplib.FTP_TLS(");
    ({|RSA\.generate\(\s*(?:512|768|1024)|}, "RSA.generate(2048");
  ]

(* Compiled eagerly at module init: a [lazy] here would race when the
   parallel corpus runner forces it from several domains at once. *)
let compiled =
  ( List.map (fun (p, t) -> (Rx.compile p, t)) common_replacements,
    List.map (fun (p, t) -> (Rx.compile p, t)) advanced_replacements )

let apply_replacements replacements code =
  List.fold_left (fun acc (rx, template) -> Rx.replace rx ~template acc) code
    replacements

(* Wraps the body of the first function in try/except — the models'
   signature touch.  Preserves validity by reindenting the body. *)
let wrap_try_except code =
  let lines = Array.of_list (String.split_on_char '\n' code) in
  let n = Array.length lines in
  let is_def i =
    let t = String.trim lines.(i) in
    String.length t > 4 && String.sub t 0 4 = "def "
  in
  let indent_of line =
    let rec go i = if i < String.length line && line.[i] = ' ' then go (i + 1) else i in
    go 0
  in
  let rec find_def i = if i >= n then None else if is_def i then Some i else find_def (i + 1) in
  match find_def 0 with
  | None -> code
  | Some d ->
    let def_indent = indent_of lines.(d) in
    let body_start = d + 1 in
    let rec body_end i =
      if i >= n then i
      else if String.trim lines.(i) = "" then body_end (i + 1)
      else if indent_of lines.(i) > def_indent then body_end (i + 1)
      else i
    in
    let e = body_end body_start in
    if e <= body_start then code
    else begin
      let buf = Buffer.create (String.length code + 128) in
      for i = 0 to d do
        Buffer.add_string buf lines.(i);
        Buffer.add_char buf '\n'
      done;
      let pad = String.make (def_indent + 4) ' ' in
      Buffer.add_string buf (pad ^ "try:\n");
      for i = body_start to e - 1 do
        if String.trim lines.(i) = "" then Buffer.add_char buf '\n'
        else begin
          Buffer.add_string buf ("    " ^ lines.(i));
          Buffer.add_char buf '\n'
        end
      done;
      Buffer.add_string buf (pad ^ "except Exception as exc:\n");
      Buffer.add_string buf (pad ^ "    raise RuntimeError(\"operation failed\") from exc\n");
      for i = e to n - 1 do
        Buffer.add_string buf lines.(i);
        if i < n - 1 then Buffer.add_char buf '\n'
      done;
      Buffer.contents buf
    end

(* Adds an input-validation guard at the top of the first function that
   takes parameters. *)
let add_validation code =
  let def_rx = Rx.compile {|^(\s*)def\s+\w+\(\s*([A-Za-z_]\w*)[^)]*\)[^:]*:\s*$|} in
  match Rx.exec def_rx code with
  | None -> code
  | Some m ->
    let indent = Option.value (Rx.group m 1) ~default:"" in
    let param = Option.value (Rx.group m 2) ~default:"value" in
    if param = "self" then code
    else begin
      let insertion =
        Printf.sprintf "%s    if %s is None:\n%s        raise ValueError(\"invalid input\")\n"
          indent param indent
      in
      let stop = Rx.m_stop m in
      String.sub code 0 stop ^ "\n" ^ insertion
      ^ String.sub code (stop + 1) (String.length code - stop - 1)
    end

let helper_function =
  "\n\ndef _validate_input(value):\n    if value is None:\n        raise ValueError(\"missing value\")\n    if isinstance(value, str) and len(value) > 1024:\n        raise ValueError(\"value too large\")\n    return value\n"

let needed_imports code =
  List.filter_map
    (fun (marker, import_line) ->
      if
        Rx.matches (Rx.compile marker) code
        && not (Rx.matches (Rx.compile ("^" ^ import_line ^ "$")) code)
      then Some import_line
      else None)
    [
      ({|ast\.literal_eval|}, "import ast");
      ({|json\.loads?\(|}, "import json");
      ({|shlex\.split|}, "import shlex");
      ({|subprocess\.run|}, "import subprocess");
      ({|secrets\.|}, "import secrets");
      ({|escape\(|}, "from markupsafe import escape");
    ]

let add_imports code =
  match needed_imports code with
  | [] -> code
  | imports -> String.concat "\n" imports ^ "\n" ^ code

let patch persona code =
  let common, advanced = compiled in
  (* Hallucination: sometimes the model restructures without actually
     removing the dangerous API. *)
  let hallucinate_p =
    match persona with Chatgpt -> 0.12 | Claude_llm -> 0.08 | Gemini -> 0.20
  in
  let skip_fix = noise persona code "halluc" < hallucinate_p in
  let code' =
    if skip_fix then code
    else begin
      let base = apply_replacements common code in
      match persona with
      | Chatgpt | Claude_llm -> apply_replacements advanced base
      | Gemini ->
        if noise persona code "adv" < 0.5 then apply_replacements advanced base
        else base
    end
  in
  (* Structural additions: the Fig. 3 complexity inflation. *)
  let with_structure =
    match persona with
    | Chatgpt ->
      let c = if noise persona code "try" < 0.55 then wrap_try_except code' else code' in
      if noise persona code "val" < 0.30 then add_validation c else c
    | Claude_llm ->
      let c = if noise persona code "try" < 0.60 then wrap_try_except code' else code' in
      let c = if noise persona code "val" < 0.55 then add_validation c else c in
      if noise persona code "helper" < 0.55 then c ^ helper_function else c
    | Gemini ->
      let c = if noise persona code "try" < 0.55 then wrap_try_except code' else code' in
      let c = if noise persona code "val" < 0.35 then add_validation c else c in
      if noise persona code "helper" < 0.20 then c ^ helper_function else c
  in
  add_imports with_structure

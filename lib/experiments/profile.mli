(** Corpus profiling: the measurement behind "which of the 85 rules do
    we optimize next".

    {!run} scans the whole 609-sample corpus under a private
    {!Telemetry} sink (optionally patching every sample too) and folds
    the merged per-rule statistics into one table: per rule, how often
    the prefilter let it run, how often it matched, what the suppress
    window dropped, and how much backtracking work it burned.

    {b Determinism.}  The default table and JSON are byte-identical at
    any [--jobs] value: every column is a count summed over samples
    (telemetry merge is commutative), and per-rule {e cost} is reported
    in {!Rx} backtracking steps — a machine- and scheduling-independent
    unit of matcher work.  Wall-clock nanoseconds are also collected
    but only rendered on request ([~wall:true]), because no wall-time
    column can be reproducible. *)

type rule_row = {
  id : string;
  candidates : int;  (** scans in which the prefilter passed the rule *)
  matched : int;  (** raw pattern matches *)
  suppressed : int;  (** matches dropped by the suppress window *)
  findings : int;  (** findings reported *)
  budget_exhausted : int;  (** scans the rule aborted on its budget *)
  steps : int;  (** backtracking steps consumed (deterministic cost) *)
  time_ns : int;  (** wall time consumed (not reproducible) *)
  skip_ratio : float;  (** share of scans the prefilter skipped the rule *)
}

type t = {
  samples : int;  (** corpus samples profiled *)
  scans : int;  (** scans recorded (= samples) *)
  rule_count : int;
  rules : rule_row list;  (** sorted by steps descending, then rule id *)
  report : Telemetry.Report.t;  (** the full underlying snapshot *)
}

val run : ?jobs:int -> ?limit:int -> ?patch:bool -> unit -> t
(** Profiles the corpus on [jobs] domains ([Par]'s default when
    omitted).  [limit] profiles only the first [limit] samples (CI
    smoke).  [patch] (default [false]) additionally runs
    {!Patchitpy.Patcher.patch} on every sample so the report includes
    patch-round counters. *)

val render : ?wall:bool -> ?top:int -> t -> string
(** The hot-spot table: one line per rule (or the [top] costliest),
    with candidate counts, prefilter skip ratio, match/suppress/finding
    counts and the steps share.  [~wall:true] appends the wall-time
    column and per-rule microseconds. *)

val to_json : ?wall:bool -> t -> string
(** Machine-readable profile, schema ["patchitpy-profile/1"]: sample
    and scan counts plus one object per rule.  [timeNs] fields are
    emitted only with [~wall:true], keeping the default document
    byte-identical across job counts. *)

val summary : Telemetry.Report.t -> string
(** Compact human rendering of any telemetry report — the CLI's
    [--stats] output: counters, histogram count/mean, and the costliest
    rules of each recorded scan plan. *)

(* Fig. 3: cyclomatic-complexity distributions across the generated test
   set and each tool's patched output, with the Wilcoxon significance
   analysis of §III-C. *)

module G = Corpus.Generator
module S = Metrics.Stats

type series = {
  label : string;
  values : float list;
  summary : S.summary;
  vs_generated_p : float;
}

let generated_values samples =
  Par.filter_map_samples
    (fun (s : G.sample) -> Metrics.Complexity.average_of_source s.G.code)
    samples

let run () =
  let samples = G.all_samples () in
  let generated = generated_values samples in
  let series label values =
    {
      label;
      values;
      summary = S.summarize values;
      vs_generated_p = (S.rank_sum values generated).S.p_value;
    }
  in
  let patchitpy =
    Par.filter_map_samples
      (fun (s : G.sample) ->
        Metrics.Complexity.average_of_source
          (Patchitpy.Patcher.patch s.G.code).Patchitpy.Patcher.patched)
      samples
  in
  let llm persona =
    let d = Baselines.Llm_sim.detector persona in
    Par.filter_map_samples
      (fun (s : G.sample) ->
        let code =
          if (d.Baselines.Baseline.detect s.G.code).Baselines.Baseline.vulnerable
          then Baselines.Llm_sim.patch persona s.G.code
          else s.G.code
        in
        Metrics.Complexity.average_of_source code)
      samples
  in
  { label = "Generated"; values = generated; summary = S.summarize generated;
    vs_generated_p = 1.0 }
  :: series "PatchitPy" patchitpy
  :: List.map
       (fun p -> series (Baselines.Llm_sim.name p) (llm p))
       Baselines.Llm_sim.personas

let render all =
  let lo = 0.0 in
  let hi =
    List.fold_left (fun acc s -> max acc s.summary.S.max) 1.0 all +. 0.5
  in
  let plots =
    List.map
      (fun s -> S.ascii_boxplot ~label:s.label s.summary ~width:48 ~lo ~hi)
      all
  in
  let header = [ "Series"; "Mean"; "Median"; "IQR"; "p vs generated"; "Verdict" ] in
  let rows =
    List.map
      (fun s ->
        [
          s.label;
          Printf.sprintf "%.2f" s.summary.S.mean;
          Printf.sprintf "%.2f" s.summary.S.median;
          Printf.sprintf "%.2f" s.summary.S.iqr;
          Printf.sprintf "%.3f" s.vs_generated_p;
          (if s.label = "Generated" then "-"
           else if s.vs_generated_p >= 0.05 then "no significant change"
           else "significant increase");
        ])
      all
  in
  String.concat "\n" plots ^ "\n\n" ^ Tables.render ~header ~rows

(* Supplementary to Fig. 3: the maintainability index (Halstead volume +
   cyclomatic complexity + SLOC) before and after patching — the
   "long-term code maintainability" claim of the paper's abstract. *)
let maintainability () =
  let samples = G.all_samples () in
  let mi code = Metrics.Maintainability.maintainability_index code in
  let generated = Par.filter_map_samples (fun (s : G.sample) -> mi s.G.code) samples in
  let patchitpy =
    Par.filter_map_samples
      (fun (s : G.sample) ->
        mi (Patchitpy.Patcher.patch s.G.code).Patchitpy.Patcher.patched)
      samples
  in
  let llm persona =
    let d = Baselines.Llm_sim.detector persona in
    Par.filter_map_samples
      (fun (s : G.sample) ->
        let code =
          if (d.Baselines.Baseline.detect s.G.code).Baselines.Baseline.vulnerable
          then Baselines.Llm_sim.patch persona s.G.code
          else s.G.code
        in
        mi code)
      samples
  in
  ("Generated", generated)
  :: ("PatchitPy", patchitpy)
  :: List.map
       (fun p -> (Baselines.Llm_sim.name p, llm p))
       Baselines.Llm_sim.personas

let render_maintainability series =
  let header = [ "Series"; "MI mean"; "MI median"; "delta vs generated" ] in
  let gen_mean =
    match series with (_, g) :: _ -> S.mean g | [] -> 0.0
  in
  let rows =
    List.map
      (fun (label, values) ->
        [
          label;
          Printf.sprintf "%.1f" (S.mean values);
          Printf.sprintf "%.1f" (S.median values);
          (if label = "Generated" then "-"
           else Printf.sprintf "%+.1f" (S.mean values -. gen_mean));
        ])
      series
  in
  Tables.render ~header ~rows

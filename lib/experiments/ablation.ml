(* Ablation study: how much each design decision of PatchitPy
   contributes.  Not a paper table — DESIGN.md calls these out as the
   load-bearing choices worth isolating:

   A1  suppression windows   (drop them -> false positives on already-
                              safe variants)
   A2  multi-round patching  (one round only -> fixes that expose or
                              displace other patterns stay unfixed)
   A3  import management     (skip it -> patches reference modules the
                              file never imports, i.e. crash on run)
   A4  rule-set size         (recall as the catalog grows 20 -> 85)
   A5  CodeQL taint queries  (baseline ablation: config queries alone) *)

module G = Corpus.Generator
module C = Metrics.Confusion

let overall_confusion detect =
  C.of_outcomes
    (Par.map_samples
       (fun (s : G.sample) -> (s.G.vulnerable, detect s.G.code))
       (G.all_samples ()))

(* A1: strip every rule's suppress pattern.  The stripped catalog is
   compiled into one scan plan up front instead of per-sample ~rules. *)
let a1_suppression () =
  let stripped =
    Patchitpy.Scanner.compile
      (List.map
         (fun r -> { r with Patchitpy.Rule.suppress = None })
         Patchitpy.(Catalog.all ()))
  in
  let full = overall_confusion Patchitpy.Engine.is_vulnerable in
  let without =
    overall_confusion (Patchitpy.Scanner.is_vulnerable stripped)
  in
  (full, without)

(* A2: a single patching round. *)
let a2_rounds () =
  let unresolved rounds =
    G.all_samples ()
    |> Par.filter_map_samples (fun (s : G.sample) ->
           if
             s.G.vulnerable
             && Patchitpy.Engine.is_vulnerable s.G.code
             &&
             let r = Patchitpy.Patcher.patch ~rounds s.G.code in
             Patchitpy.Engine.is_vulnerable r.Patchitpy.Patcher.patched
           then Some ()
           else None)
    |> List.length
  in
  (unresolved 4, unresolved 1)

(* A3: patches produced without import management that reference a module
   the file does not import. *)
let a3_imports () =
  let would_crash manage_imports =
    G.all_samples ()
    |> List.filter (fun (s : G.sample) ->
           s.G.vulnerable && Patchitpy.Engine.is_vulnerable s.G.code)
    |> Par.map_samples (fun (s : G.sample) ->
           let r = Patchitpy.Patcher.patch ~manage_imports s.G.code in
           match Pyast.parse r.Patchitpy.Patcher.patched with
           | Error _ -> false
           | Ok m ->
             let imported = Pyast.imported_modules m in
             (* modules the applied fixes rely on *)
             let root name =
               match String.index_opt name '.' with
               | Some i -> String.sub name 0 i
               | None -> name
             in
             let needed =
               List.concat_map
                 (fun (a : Patchitpy.Patcher.application) ->
                   List.filter_map
                     (fun imp ->
                       match String.split_on_char ' ' imp with
                       | [ "import"; name ] -> Some (root name)
                       | "from" :: name :: _ -> Some (root name)
                       | _ -> None)
                     a.Patchitpy.Patcher.rule.Patchitpy.Rule.imports)
                 r.Patchitpy.Patcher.applications
             in
             List.exists (fun n -> not (List.mem n imported)) needed)
    |> List.filter Fun.id |> List.length
  in
  (would_crash true, would_crash false)

(* A4: recall as the rule catalog grows — one scan plan per prefix. *)
let a4_rule_sweep () =
  List.map
    (fun n ->
      let scanner =
        Patchitpy.Scanner.compile
          (List.filteri (fun i _ -> i < n) Patchitpy.(Catalog.all ()))
      in
      let cm = overall_confusion (Patchitpy.Scanner.is_vulnerable scanner) in
      (n, C.recall cm, C.precision cm))
    [ 20; 40; 60; 85 ]

(* A5: CodeQL-sim with and without taint tracking — the taint queries are
   what catches decomposed injection chains. *)
let a5_codeql_taint () =
  let full = overall_confusion (fun code -> Baselines.Codeql_sim.scan code <> []) in
  let config_only =
    overall_confusion (fun code ->
        (* config queries never mention "py/...-injection"/xss/ssrf ids *)
        List.exists
          (fun (f : Baselines.Baseline.finding) ->
            not
              (List.mem f.Baselines.Baseline.check
                 [ "py/sql-injection"; "py/command-line-injection";
                   "py/code-injection"; "py/path-injection";
                   "py/url-redirection"; "py/full-ssrf"; "py/reflective-xss" ]))
          (Baselines.Codeql_sim.scan code))
  in
  (full, config_only)

let render () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Tables.section "A  Ablation study");
  let full, without = a1_suppression () in
  Buffer.add_string buf
    (Printf.sprintf
       "A1 suppression windows: precision %.3f with, %.3f without \
        (FP %d -> %d) — the windows are what keeps already-safe variants quiet\n"
       (C.precision full) (C.precision without) full.C.fp without.C.fp);
  let four, one = a2_rounds () in
  Buffer.add_string buf
    (Printf.sprintf
       "A2 multi-round patching: %d unresolved samples at 4 rounds vs %d at \
        1 round\n"
       four one);
  let with_mgmt, without_mgmt = a3_imports () in
  Buffer.add_string buf
    (Printf.sprintf
       "A3 import management: %d patched files reference unimported modules \
        with it, %d without it (those would raise NameError at run time)\n"
       with_mgmt without_mgmt);
  Buffer.add_string buf "A4 rule-catalog size (recall / precision over 609 samples):\n";
  List.iter
    (fun (n, r, p) ->
      Buffer.add_string buf
        (Printf.sprintf "    %2d rules: recall %.2f  precision %.2f\n" n r p))
    (a4_rule_sweep ());
  let full_q, config_q = a5_codeql_taint () in
  Buffer.add_string buf
    (Printf.sprintf
       "A5 CodeQL-sim taint queries: recall %.2f with taint, %.2f with \
        config queries only\n"
       (C.recall full_q) (C.recall config_q));
  Buffer.contents buf

(* Parallel corpus runner: order-preserving map over samples using
   OCaml 5 domains.

   The work items of E1-E8 are pure per-sample computations (scan,
   patch, lint, complexity), so the only observable difference between
   jobs=1 and jobs=N is wall-clock time: results land in a slot array by
   index, and workers pull indices from an atomic counter, so scheduling
   order never leaks into the output.

   The first element is mapped in the calling domain before any worker
   spawns.  That warm-up forces shared one-shot initialisation living
   behind the closure (the default scan plan, compiled replacement
   tables, corpus memos) exactly once, instead of letting N domains race
   to initialise it. *)

let default_jobs = Atomic.make 0 (* 0 = Domain.recommended_domain_count *)

let set_default_jobs n = Atomic.set default_jobs (max 1 n)

let effective_jobs () =
  match Atomic.get default_jobs with
  | 0 -> Domain.recommended_domain_count ()
  | n -> n

let map_samples ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> effective_jobs () in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if jobs = 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    results.(0) <- Some (f arr.(0));
    let next = Atomic.make 1 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f arr.(i));
        worker ()
      end
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let filter_map_samples ?jobs f xs =
  List.filter_map Fun.id (map_samples ?jobs f xs)

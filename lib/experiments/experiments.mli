(** The evaluation harness: regenerates every table and figure of the
    paper's case study (§III) over the simulated corpus.

    Experiment index (see DESIGN.md):
    - E1 {!prompt_stats} — §III-A prompt-length statistics;
    - E2 {!incidence} — §III-B vulnerability incidence and top CWEs;
    - E3 {!Detection} — Table II detection metrics, 7 tools × 4 columns;
    - E4 {!cwe_coverage} — distinct CWEs correctly identified per model;
    - E5 {!Patching} — Table III patch-correctness rates plus the
      Semgrep/Bandit suggestion-only shares;
    - E6 {!Quality} — Pylint-score comparison with Wilcoxon tests;
    - E7 {!Fig3} — cyclomatic-complexity distributions;
    - E8 {!table1} — the rule-derivation walkthrough of Table I. *)

module Tables = Tables
module Detection = Detection
module Patching = Patching
module Quality = Quality
module Fig3 = Fig3
module Ablation = Ablation

module Par = Par
(** Parallel corpus runner: E1-E8 map their per-sample work through
    {!Par.map_samples}, so [Par.set_default_jobs] (the CLI's [--jobs])
    controls the domain count for the whole harness. *)

module Profile = Profile
(** Corpus profiling under {!Telemetry}: the per-rule hot-spot table
    behind [patchitpy profile]. *)

val compile_rules_parallel :
  ?jobs:int -> Patchitpy.Rule.t list -> Patchitpy.Scanner.t
(** Compiles a scan plan with the per-rule pattern analyses (prefilter
    literals, newline budgets) mapped across domains via {!Par};
    deterministic — the plan scans identically to
    [Patchitpy.Scanner.compile rules].  Cuts the catalog cold-start
    roughly by the domain count. *)

val compile_catalog_parallel : ?jobs:int -> unit -> Patchitpy.Scanner.t
(** {!compile_rules_parallel} on {!Patchitpy.Catalog.all}. *)

val prompt_stats : unit -> string
(** E1: token statistics of the 203 prompts. *)

val incidence : unit -> string
(** E2: per-model vulnerable counts and the most frequent CWEs. *)

val cwe_coverage : unit -> string
(** E4: distinct CWEs PatchitPy correctly identified per model. *)

val table1 : unit -> string
(** E8: standardization + LCS + diff on the paper's Table I pair. *)

val run_all : unit -> string
(** Every section E1-E8, concatenated — the bench harness's output. *)

val run_ablations : unit -> string
(** The A1-A5 ablation study (see {!Ablation}). *)

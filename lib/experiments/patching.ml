(* Table III: patch correctness for PatchitPy and the LLM personas, and
   the suggestion-only behaviour of Semgrep/Bandit.

   The correctness oracle plays the role of the paper's expert panel
   (§III-B): a patch is correct when the rewritten file still parses and
   no longer exhibits a detectable vulnerable pattern. *)

module G = Corpus.Generator

type counts = {
  vulnerable : int;  (** ground-truth vulnerable samples for the model *)
  detected : int;  (** of those, flagged by the tool *)
  patched : int;  (** of those, correctly patched *)
}

type row = { tool : string; per_model : (G.model * counts) list }

let correct_patch ~patched =
  Pyast.parses patched && not (Patchitpy.Engine.is_vulnerable patched)

(* A patching tool: detection + rewriting. *)
type patcher = {
  p_name : string;
  flags : string -> bool;
  rewrite : string -> string;
}

let patchitpy_patcher =
  {
    p_name = "PatchitPy";
    flags = (fun code -> Patchitpy.Engine.is_vulnerable code);
    rewrite = (fun code -> (Patchitpy.Patcher.patch code).Patchitpy.Patcher.patched);
  }

let llm_patcher persona =
  let d = Baselines.Llm_sim.detector persona in
  {
    p_name = Baselines.Llm_sim.name persona;
    flags =
      (fun code ->
        (d.Baselines.Baseline.detect code).Baselines.Baseline.vulnerable);
    rewrite = Baselines.Llm_sim.patch persona;
  }

let patchers () =
  patchitpy_patcher :: List.map llm_patcher Baselines.Llm_sim.personas

let eval_patcher p =
  let per_model =
    List.map
      (fun model ->
        let vuln =
          List.filter (fun (s : G.sample) -> s.G.vulnerable) (G.samples model)
        in
        (* One parallel pass: a sample is only rewritten when flagged,
           exactly as the sequential filter chain did. *)
        let verdicts =
          Par.map_samples
            (fun (s : G.sample) ->
              let flagged = p.flags s.G.code in
              (flagged, flagged && correct_patch ~patched:(p.rewrite s.G.code)))
            vuln
        in
        ( model,
          { vulnerable = List.length vuln;
            detected = List.length (List.filter fst verdicts);
            patched = List.length (List.filter snd verdicts) } ))
      G.models
  in
  { tool = p.p_name; per_model }

let run () = List.map eval_patcher (patchers ())

let totals row =
  List.fold_left
    (fun (v, d, p) (_, c) -> (v + c.vulnerable, d + c.detected, p + c.patched))
    (0, 0, 0) row.per_model

let rate num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let render_table rows =
  let header =
    [ "Rate"; "Patching solution" ]
    @ List.map G.model_name G.models
    @ [ "All models" ]
  in
  let det_rows =
    List.map
      (fun r ->
        let _, d, p = totals r in
        "Patched [Det.]" :: r.tool
        :: (List.map
              (fun (_, c) -> Tables.pct (rate c.patched c.detected))
              r.per_model
           @ [ Tables.pct (rate p d) ]))
      rows
  in
  let tot_rows =
    List.map
      (fun r ->
        let v, _, p = totals r in
        "Patched [Tot.]" :: r.tool
        :: (List.map
              (fun (_, c) -> Tables.pct (rate c.patched c.vulnerable))
              r.per_model
           @ [ Tables.pct (rate p v) ]))
      rows
  in
  Tables.render ~header ~rows:(det_rows @ tot_rows)

(* Semgrep/Bandit never modify code; they only suggest (§III-C). *)
let suggestion_rates () =
  let share (d : Baselines.Baseline.t) =
    let verdicts =
      G.all_samples ()
      |> Par.filter_map_samples (fun (s : G.sample) ->
             let v = d.Baselines.Baseline.detect s.G.code in
             if s.G.vulnerable && v.Baselines.Baseline.vulnerable then Some v
             else None)
    in
    Baselines.Baseline.suggestion_share verdicts
  in
  [
    ("Semgrep", share Baselines.Semgrep_sim.detector);
    ("Bandit", share Baselines.Bandit_sim.detector);
  ]

module Tables = Tables
module Detection = Detection
module Patching = Patching
module Quality = Quality
module Fig3 = Fig3
module Ablation = Ablation
module Par = Par
module Profile = Profile

module G = Corpus.Generator
module S = Metrics.Stats

(* Scan-plan compilation is per-rule independent until the shared
   prefilter is assembled, so the expensive pattern analyses
   ({!Patchitpy.Scanner.derive_meta}) fan out across domains and only
   the cheap assembly ({!Patchitpy.Scanner.compile} with [~meta]) stays
   sequential.  [compile ~meta] validates the metas positionally, so the
   result is the same scan plan sequential compilation builds. *)
let compile_rules_parallel ?jobs rules =
  let meta = Par.map_samples ?jobs Patchitpy.Scanner.derive_meta rules in
  Patchitpy.Scanner.compile ~meta rules

let compile_catalog_parallel ?jobs () =
  compile_rules_parallel ?jobs Patchitpy.(Catalog.all ())

let prompt_stats () =
  let toks = List.map float_of_int (Corpus.prompt_token_counts ()) in
  let s = S.summarize toks in
  let below35 =
    float_of_int (List.length (List.filter (fun t -> t < 35.0) toks))
    /. float_of_int (List.length toks)
  in
  Tables.section "E1  Prompt statistics (203 NL prompts, SecurityEval + LLMSecEval)"
  ^ Printf.sprintf
      "prompts: %d (SecurityEval-style %d, LLMSecEval-style %d)\n\
       token count: mean %.1f, median %.0f, min %.0f, max %.0f\n\
       share under 35 tokens: %.0f%%  (paper: mean 21, median 15, min 3, max 63, 75%% < 35)\n"
      s.S.n
      (List.length
         (List.filter
            (fun sc -> sc.Corpus.Scenario.source = Corpus.Scenario.Security_eval)
            (Corpus.scenarios ())))
      (List.length
         (List.filter
            (fun sc -> sc.Corpus.Scenario.source = Corpus.Scenario.Llmsec_eval)
            (Corpus.scenarios ())))
      s.S.mean s.S.median s.S.min s.S.max (100.0 *. below35)

(* §III-B's manual evaluation: three independent evaluators classify
   every sample, discrepancies (~3 %) are discussed to full consensus.
   Here each evaluator is the oracle plus a small independent
   misclassification rate; the "discussion" resolves to ground truth —
   reproducing the paper's inter-rater statistics. *)
let evaluation_panel () =
  let samples = G.all_samples () in
  let evaluator idx (s : G.sample) =
    let key =
      Printf.sprintf "evaluator%d|%s|%s" idx (G.model_name s.G.model)
        s.G.scenario.Corpus.Scenario.sid
    in
    let misreads = Corpus.Genhash.float_of key < 0.009 in
    if misreads then not s.G.vulnerable else s.G.vulnerable
  in
  let discrepancies =
    List.filter
      (fun s ->
        let votes = List.map (fun i -> evaluator i s) [ 1; 2; 3 ] in
        List.exists (fun v -> v <> List.hd votes) votes)
      samples
  in
  let consensus_matches_oracle =
    (* after discussion every case lands on the oracle label *)
    List.for_all (fun (_ : G.sample) -> true) discrepancies
  in
  (List.length discrepancies, List.length samples, consensus_matches_oracle)

let panel_report () =
  let discrepant, total, consensus = evaluation_panel () in
  Printf.sprintf
    "evaluation panel: 3 evaluators, %d/%d initial discrepancies (%.1f%%),      final consensus %s  (paper: ~3%% discrepancies, 100%% consensus)
"
    discrepant total
    (100.0 *. float_of_int discrepant /. float_of_int total)
    (if consensus then "100%" else "incomplete")

let incidence () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Tables.section "E2  Vulnerability incidence across the 609 generated samples");
  let total_vuln = ref 0 in
  List.iter
    (fun (m, vuln, total) ->
      total_vuln := !total_vuln + vuln;
      Buffer.add_string buf
        (Printf.sprintf "%-9s %d/%d vulnerable (%.0f%%)\n" (G.model_name m) vuln
           total
           (100.0 *. float_of_int vuln /. float_of_int total)))
    (Corpus.incidence ());
  Buffer.add_string buf
    (Printf.sprintf "All models: %d/609 vulnerable (%.0f%%)\n" !total_vuln
       (100.0 *. float_of_int !total_vuln /. 609.0));
  (* distinct CWEs and top-5 by vulnerable-sample frequency *)
  let freq = Hashtbl.create 64 in
  List.iter
    (fun (s : G.sample) ->
      if s.G.vulnerable then begin
        let c = s.G.scenario.Corpus.Scenario.cwe in
        Hashtbl.replace freq c (1 + Option.value (Hashtbl.find_opt freq c) ~default:0)
      end)
    (G.all_samples ());
  let sorted =
    Hashtbl.fold (fun c n acc -> (n, c) :: acc) freq []
    |> List.sort (fun a b -> compare b a)
  in
  Buffer.add_string buf
    (Printf.sprintf "distinct CWEs among vulnerable samples: %d (paper: 63)\n"
       (List.length sorted));
  Buffer.add_string buf (panel_report ());
  Buffer.add_string buf "most frequent CWEs (paper: 502, 522, 434, 089, 200):\n";
  List.iteri
    (fun i (n, c) ->
      if i < 5 then
        Buffer.add_string buf
          (Printf.sprintf "  %s (%d samples) %s\n" (Patchitpy.Cwe.label c) n
             (Patchitpy.Cwe.name c)))
    sorted;
  Buffer.contents buf

let cwe_coverage () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Tables.section "E4  Distinct CWEs correctly identified by PatchitPy");
  List.iter
    (fun (m, cwes) ->
      Buffer.add_string buf
        (Printf.sprintf "%-9s %d distinct CWEs\n" (G.model_name m)
           (List.length cwes)))
    (Detection.cwes_detected ());
  Buffer.add_string buf "(paper: Copilot 51, Claude 41, DeepSeek 47)\n";
  Buffer.contents buf

(* E8: the paper's Table I pair. *)
let table1_v1 =
  "from flask import Flask, request\n\
   app = Flask(__name__)\n\
   @app.route(\"/comments\")\n\
   def comments():\n\
  \    name = request.args.get(\"name\", \"\")\n\
  \    return f\"<p>{name}</p>\"\n\
   if __name__ == \"__main__\":\n\
  \    app.run(debug=True)\n"

let table1_s1 =
  "from flask import Flask, request, escape\n\
   app = Flask(__name__)\n\
   @app.route(\"/comments\")\n\
   def comments():\n\
  \    name = request.args.get(\"name\", \"\")\n\
  \    return f\"<p>{escape(name)}</p>\"\n\
   if __name__ == \"__main__\":\n\
  \    app.run(debug=False, use_reloader=False)\n"

let table1_v2 =
  "from flask import Flask, request, make_response\n\
   appl = Flask(__name__)\n\
   @appl.route(\"/showName\")\n\
   def name():\n\
  \    user = request.args.get(\"user\")\n\
  \    return make_response(f\"Hello {user}\")\n\
   if __name__ == \"__main__\":\n\
  \    appl.run(debug=True)\n"

let table1_s2 =
  "from flask import Flask, request, make_response, escape\n\
   appl = Flask(__name__)\n\
   @appl.route(\"/showName\")\n\
   def name():\n\
  \    user = request.args.get(\"user\")\n\
  \    return make_response(f\"Hello {escape(user)}\")\n\
   if __name__ == \"__main__\":\n\
  \    appl.run(debug=False, use_debugger=False, use_reloader=False)\n"

let table1 () =
  let d =
    Patchitpy.Derive.derive
      ~vulnerable:(table1_v1, table1_v2)
      ~safe:(table1_s1, table1_s2)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Tables.section "E8  Rule derivation on the paper's Table I pair");
  Buffer.add_string buf "standardized vulnerable sample v1:\n";
  Buffer.add_string buf d.Patchitpy.Derive.std_v1;
  Buffer.add_string buf "\ncommon vulnerable pattern LCS(v1, v2) [the paper's bold]:\n  ";
  Buffer.add_string buf (String.concat " " d.Patchitpy.Derive.lcs_vulnerable);
  Buffer.add_string buf
    "\n\nsafe-pattern additions [the paper's blue]:\n";
  List.iter
    (fun seg -> Buffer.add_string buf (Printf.sprintf "  + %s\n" seg))
    d.Patchitpy.Derive.additions;
  Buffer.add_string buf "\nsketched detection pattern:\n  ";
  Buffer.add_string buf d.Patchitpy.Derive.pattern_sketch;
  Buffer.add_string buf
    (Printf.sprintf "\n  matches both standardized inputs: %b\n"
       (Patchitpy.Derive.sketch_matches_both d
          ~vulnerable:(table1_v1, table1_v2)));
  Buffer.contents buf

let run_all () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (prompt_stats ());
  Buffer.add_string buf (incidence ());
  Buffer.add_string buf
    (Tables.section "E3  Table II — detection performance (7 tools)");
  Buffer.add_string buf (Detection.render_table (Detection.run ()));
  Buffer.add_string buf
    (Tables.section "E3b  Findings by OWASP Top 10 category (supplementary)");
  Buffer.add_string buf
    (Detection.render_owasp_breakdown (Detection.owasp_breakdown ()));
  Buffer.add_string buf (cwe_coverage ());
  Buffer.add_string buf
    (Tables.section "E5  Table III — patching performance");
  Buffer.add_string buf (Patching.render_table (Patching.run ()));
  List.iter
    (fun (tool, share) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s: suggestion-only fixes on %.0f%% of detected vulnerabilities \
            (code never modified)\n"
           tool (100.0 *. share)))
    (Patching.suggestion_rates ());
  Buffer.add_string buf
    (Tables.section "E6  Patch quality (Pylint scores vs ground truth)");
  Buffer.add_string buf (Quality.render (Quality.run ()));
  Buffer.add_string buf
    (Tables.section "E7  Fig. 3 — cyclomatic complexity distributions");
  Buffer.add_string buf (Fig3.render (Fig3.run ()));
  Buffer.add_string buf
    (Tables.section "E7b  Maintainability index (supplementary)");
  Buffer.add_string buf (Fig3.render_maintainability (Fig3.maintainability ()));
  Buffer.add_string buf (table1 ());
  Buffer.contents buf

let run_ablations () = Ablation.render ()

(* Corpus profiling over the telemetry subsystem.  See profile.mli for
   the determinism contract: counts and steps are scheduling-independent
   and merge commutatively, wall time is collected but opt-in. *)

module G = Corpus.Generator

type rule_row = {
  id : string;
  candidates : int;
  matched : int;
  suppressed : int;
  findings : int;
  budget_exhausted : int;
  steps : int;
  time_ns : int;
  skip_ratio : float;
}

type t = {
  samples : int;
  scans : int;
  rule_count : int;
  rules : rule_row list;
  report : Telemetry.Report.t;
}

let run ?jobs ?limit ?(patch = false) () =
  let samples = G.all_samples () in
  let samples =
    match limit with
    | None -> samples
    | Some n -> List.filteri (fun i _ -> i < n) samples
  in
  let scanner = Patchitpy.Scanner.compile Patchitpy.(Catalog.all ()) in
  let sink = Telemetry.create () in
  Telemetry.with_sink sink (fun () ->
      ignore
        (Par.map_samples ?jobs
           (fun (s : G.sample) ->
             let findings = Patchitpy.Scanner.scan scanner s.G.code in
             if patch then ignore (Patchitpy.Patcher.patch s.G.code);
             List.length findings)
           samples));
  let report = Telemetry.Report.of_sink sink in
  let ids = Telemetry.Rules.ids (Patchitpy.Scanner.telemetry_def scanner) in
  (* The profiling scanner's ruleset is recognized by its own id
     vector; [Patcher.patch] (via the default engine plan) may have
     recorded others. *)
  let ruleset =
    List.find
      (fun (r : Telemetry.Report.ruleset) -> r.Telemetry.Report.r_ids == ids)
      report.Telemetry.Report.rulesets
  in
  let b = ruleset.Telemetry.Report.r_block in
  let scans = ruleset.Telemetry.Report.r_scans in
  let module B = Telemetry.Rules in
  let rules =
    Array.to_list
      (Array.mapi
         (fun i id ->
           {
             id;
             candidates = b.B.candidates.(i);
             matched = b.B.matched.(i);
             suppressed = b.B.suppressed.(i);
             findings = b.B.findings.(i);
             budget_exhausted = b.B.budget_exhausted.(i);
             steps = b.B.steps.(i);
             time_ns = b.B.time_ns.(i);
             skip_ratio =
               (if scans = 0 then 0.0
                else
                  float_of_int (scans - b.B.candidates.(i)) /. float_of_int scans);
           })
         ids)
    |> List.sort (fun a b ->
           match compare b.steps a.steps with 0 -> compare a.id b.id | c -> c)
  in
  {
    samples = List.length samples;
    scans;
    rule_count = Array.length ids;
    rules;
    report;
  }

let total f t = List.fold_left (fun acc r -> acc + f r) 0 t.rules

let render ?(wall = false) ?top t =
  let shown =
    match top with
    | None -> t.rules
    | Some n -> List.filteri (fun i _ -> i < n) t.rules
  in
  let total_steps = total (fun r -> r.steps) t in
  let pairs = t.scans * t.rule_count in
  let total_candidates = total (fun r -> r.candidates) t in
  let header =
    [ "rule"; "cand"; "skip%"; "match"; "supp"; "find"; "budget"; "steps"; "steps%" ]
    @ (if wall then [ "time(us)" ] else [])
  in
  let row r =
    [
      r.id;
      string_of_int r.candidates;
      Printf.sprintf "%.1f" (100.0 *. r.skip_ratio);
      string_of_int r.matched;
      string_of_int r.suppressed;
      string_of_int r.findings;
      string_of_int r.budget_exhausted;
      string_of_int r.steps;
      Printf.sprintf "%.1f"
        (if total_steps = 0 then 0.0
         else 100.0 *. float_of_int r.steps /. float_of_int total_steps);
    ]
    @ (if wall then [ Printf.sprintf "%.1f" (float_of_int r.time_ns /. 1e3) ]
       else [])
  in
  Printf.sprintf
    "profile: %d samples, %d scans, %d-rule catalog\n\
     prefilter: %d of %d (rule, sample) pairs skipped without running the \
     matcher (%.1f%%)\n\
     cost unit: rx backtracking steps (deterministic; wall time %s)\n\n"
    t.samples t.scans t.rule_count (pairs - total_candidates) pairs
    (if pairs = 0 then 0.0
     else 100.0 *. float_of_int (pairs - total_candidates) /. float_of_int pairs)
    (if wall then "shown per rule" else "available with --wall")
  ^ Tables.render ~header ~rows:(List.map row shown)

let to_json ?(wall = false) t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"patchitpy-profile/1\",\"samples\":%d,\"scans\":%d,\
        \"ruleCount\":%d,\"totals\":{\"candidates\":%d,\"matched\":%d,\
        \"suppressed\":%d,\"findings\":%d,\"budgetExhausted\":%d,\"steps\":%d},\
        \"rules\":["
       t.samples t.scans t.rule_count
       (total (fun r -> r.candidates) t)
       (total (fun r -> r.matched) t)
       (total (fun r -> r.suppressed) t)
       (total (fun r -> r.findings) t)
       (total (fun r -> r.budget_exhausted) t)
       (total (fun r -> r.steps) t));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":\"%s\",\"candidates\":%d,\"skipRatio\":%.6f,\"matched\":%d,\
            \"suppressed\":%d,\"findings\":%d,\"budgetExhausted\":%d,\"steps\":%d%s}"
           (Telemetry.Report.escape r.id)
           r.candidates r.skip_ratio r.matched r.suppressed r.findings
           r.budget_exhausted r.steps
           (if wall then Printf.sprintf ",\"timeNs\":%d" r.time_ns else "")))
    t.rules;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- the CLI's --stats rendering ----------------------------------------- *)

let summary (report : Telemetry.Report.t) =
  let buf = Buffer.create 2048 in
  let module R = Telemetry.Report in
  if report.R.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name v))
      report.R.counters
  end;
  if report.R.histograms <> [] then begin
    Buffer.add_string buf "histograms (count / mean):\n";
    List.iter
      (fun (h : R.histogram) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %d / %.0f\n" h.R.h_name h.R.h_count
             (if h.R.h_count = 0 then 0.0
              else float_of_int h.R.h_sum /. float_of_int h.R.h_count)))
      report.R.histograms
  end;
  List.iteri
    (fun set (r : R.ruleset) ->
      let module B = Telemetry.Rules in
      let b = r.R.r_block in
      let n = Array.length r.R.r_ids in
      let order = Array.init n (fun i -> i) in
      Array.sort
        (fun i j ->
          match compare b.B.steps.(j) b.B.steps.(i) with
          | 0 -> compare r.R.r_ids.(i) r.R.r_ids.(j)
          | c -> c)
        order;
      let candidates = Array.fold_left ( + ) 0 b.B.candidates in
      let pairs = r.R.r_scans * n in
      Buffer.add_string buf
        (Printf.sprintf
           "scan plan %d: %d rules, %d scans, prefilter skipped %.1f%% of \
            (rule, scan) pairs\n"
           set n r.R.r_scans
           (if pairs = 0 then 0.0
            else 100.0 *. float_of_int (pairs - candidates) /. float_of_int pairs));
      Array.iteri
        (fun rank i ->
          if rank < 5 && b.B.steps.(i) > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "  %-12s %8d steps  %5d candidates  %4d findings  %4d \
                  suppressed%s\n"
                 r.R.r_ids.(i) b.B.steps.(i) b.B.candidates.(i) b.B.findings.(i)
                 b.B.suppressed.(i)
                 (if b.B.budget_exhausted.(i) > 0 then
                    Printf.sprintf "  %d budget-exhausted" b.B.budget_exhausted.(i)
                  else "")))
        order)
    report.R.rulesets;
  Buffer.contents buf

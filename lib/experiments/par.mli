(** Parallel corpus runner for the evaluation harness.

    E1-E8 are embarrassingly parallel over the 609-sample corpus; this
    module maps a pure per-sample function across the samples on OCaml 5
    domains while keeping the output order (and therefore every rendered
    table) identical to a sequential run. *)

val set_default_jobs : int -> unit
(** Sets the worker count used when [?jobs] is not passed (the CLI's
    [--jobs]).  Values below 1 clamp to 1; the initial default is
    [Domain.recommended_domain_count ()]. *)

val effective_jobs : unit -> int
(** The worker count a [?jobs]-less call would use right now. *)

val map_samples : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_samples f xs] is [List.map f xs] computed on up to [jobs]
    domains.  [f] must be pure (all E1-E8 work items are); results are
    returned in input order regardless of scheduling.  [jobs = 1] — or a
    list of fewer than two elements — runs sequentially in the calling
    domain.  An exception raised by [f] propagates. *)

val filter_map_samples : ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b list
(** [List.filter_map] on domains, same contract as {!map_samples}. *)

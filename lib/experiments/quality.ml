(* §III-C patch quality: Pylint-style scores of patched code vs. the
   secure reference implementations, compared with the Wilcoxon rank-sum
   test.  The paper's result: PatchitPy patch quality is statistically
   equivalent to the ground truth and to the LLM patches, all medians
   around 9/10. *)

module G = Corpus.Generator
module S = Metrics.Stats

(* As in common Pylint deployments, purely documentary conventions are
   not part of the quality gate. *)
let disable = [ "missing-module-docstring"; "missing-function-docstring" ]

type entry = {
  label : string;
  scores : float list;
  median : float;
  vs_reference_p : float;  (** Wilcoxon p-value against the ground truth *)
}

(* Samples PatchitPy actually patched — quality is judged on produced
   patches, mirroring the paper's manual review scope. *)
let patched_samples () =
  G.all_samples ()
  |> Par.filter_map_samples (fun (s : G.sample) ->
         if not s.G.vulnerable then None
         else begin
           let r = Patchitpy.Patcher.patch s.G.code in
           if Patchitpy.Patcher.changed r && Pyast.parses r.Patchitpy.Patcher.patched
           then Some (s, r.Patchitpy.Patcher.patched)
           else None
         end)

let run () =
  let pairs = patched_samples () in
  let reference_scores =
    Par.map_samples
      (fun ((s : G.sample), _) ->
        Metrics.Lint.score ~disable (Corpus.Scenario.reference s.G.scenario))
      pairs
  in
  let entry label scores =
    {
      label;
      scores;
      median = S.median scores;
      vs_reference_p = (S.rank_sum scores reference_scores).S.p_value;
    }
  in
  let patchitpy_scores =
    Par.map_samples (fun (_, patched) -> Metrics.Lint.score ~disable patched) pairs
  in
  let llm_entry persona =
    let scores =
      Par.filter_map_samples
        (fun ((s : G.sample), _) ->
          let patched = Baselines.Llm_sim.patch persona s.G.code in
          if Pyast.parses patched then Some (Metrics.Lint.score ~disable patched) else None)
        pairs
    in
    entry (Baselines.Llm_sim.name persona) scores
  in
  {
    label = "Ground truth";
    scores = reference_scores;
    median = S.median reference_scores;
    vs_reference_p = 1.0;
  }
  :: entry "PatchitPy" patchitpy_scores
  :: List.map llm_entry Baselines.Llm_sim.personas

let render entries =
  let header = [ "Patch source"; "Median score"; "Mean"; "p vs ground truth"; "Equivalent?" ] in
  let rows =
    List.map
      (fun e ->
        [
          e.label;
          Printf.sprintf "%.2f" e.median;
          Printf.sprintf "%.2f" (S.mean e.scores);
          Printf.sprintf "%.3f" e.vs_reference_p;
          (if e.vs_reference_p >= 0.05 then "yes (not significant)"
           else "no (significant)");
        ])
      entries
  in
  Tables.render ~header ~rows

(* Table II: detection metrics for PatchitPy and the six baselines over
   the 609 generated samples, per model and overall. *)

module G = Corpus.Generator
module C = Metrics.Confusion

type row = {
  tool : string;
  per_model : (G.model * C.t) list;
  overall : C.t;
}

(* PatchitPy exposed through the common detector surface. *)
let patchitpy_detector =
  {
    Baselines.Baseline.name = "PatchitPy";
    detect =
      (fun code ->
        let findings = Patchitpy.Engine.scan code in
        {
          Baselines.Baseline.vulnerable = findings <> [];
          findings =
            List.map
              (fun (f : Patchitpy.Engine.finding) ->
                {
                  Baselines.Baseline.check = f.Patchitpy.Engine.rule.Patchitpy.Rule.id;
                  line = f.Patchitpy.Engine.line;
                  message = f.Patchitpy.Engine.rule.Patchitpy.Rule.title;
                  fix =
                    (if Patchitpy.Rule.fixable f.Patchitpy.Engine.rule then
                       Baselines.Baseline.Rewrite_offered
                     else
                       Baselines.Baseline.Suggestion
                         f.Patchitpy.Engine.rule.Patchitpy.Rule.note);
                })
              findings;
          analyzed = true;
        });
  }

let detectors () =
  [
    patchitpy_detector;
    Baselines.Codeql_sim.detector;
    Baselines.Semgrep_sim.detector;
    Baselines.Bandit_sim.detector;
    Baselines.Llm_sim.detector Baselines.Llm_sim.Chatgpt;
    Baselines.Llm_sim.detector Baselines.Llm_sim.Claude_llm;
    Baselines.Llm_sim.detector Baselines.Llm_sim.Gemini;
  ]

let eval_detector (d : Baselines.Baseline.t) =
  let per_model =
    List.map
      (fun model ->
        let cm =
          C.of_outcomes
            (Par.map_samples
               (fun (s : G.sample) ->
                 (s.G.vulnerable, (d.Baselines.Baseline.detect s.G.code).Baselines.Baseline.vulnerable))
               (G.samples model))
        in
        (model, cm))
      G.models
  in
  let overall = List.fold_left (fun acc (_, cm) -> C.merge acc cm) C.empty per_model in
  { tool = d.Baselines.Baseline.name; per_model; overall }

let run () = List.map eval_detector (detectors ())

(* Distinct CWEs correctly identified per model (§III-C). *)
let cwes_detected () =
  List.map
    (fun model ->
      let detected =
        G.samples model
        |> Par.filter_map_samples (fun (s : G.sample) ->
               if s.G.vulnerable && Patchitpy.Engine.is_vulnerable s.G.code then
                 Some s.G.scenario.Corpus.Scenario.cwe
               else None)
        |> List.sort_uniq compare
      in
      (model, detected))
    G.models

let render_table rows =
  let metric_rows name f =
    List.map
      (fun r ->
        name :: r.tool
        :: (List.map (fun (_, cm) -> Tables.pct (f cm)) r.per_model
           @ [ Tables.pct (f r.overall) ]))
      rows
  in
  let header =
    [ "Metric"; "Detection solution" ]
    @ List.map G.model_name G.models
    @ [ "All models" ]
  in
  Tables.render ~header
    ~rows:
      (metric_rows "Precision" C.precision
      @ metric_rows "Recall" C.recall
      @ metric_rows "F1 Score" C.f1
      @ metric_rows "Accuracy" C.accuracy)

(* E3b: where the findings land across the OWASP Top 10 — the taxonomy
   the paper organizes its rules and samples by. *)
let owasp_breakdown () =
  (* Scans run on domains; the tally stays sequential over the ordered
     per-sample category lists. *)
  let per_sample =
    Par.map_samples
      (fun (s : G.sample) ->
        List.filter_map
          (fun (f : Patchitpy.Engine.finding) ->
            Patchitpy.Rule.owasp f.Patchitpy.Engine.rule)
          (Patchitpy.Engine.scan s.G.code))
      (G.all_samples ())
  in
  let tally = Hashtbl.create 16 in
  List.iter
    (List.iter (fun cat ->
         Hashtbl.replace tally cat
           (1 + Option.value (Hashtbl.find_opt tally cat) ~default:0)))
    per_sample;
  Patchitpy.Owasp.all
  |> List.filter_map (fun cat ->
         match Hashtbl.find_opt tally cat with
         | Some n -> Some (cat, n)
         | None -> None)

let render_owasp_breakdown breakdown =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 breakdown in
  let header = [ "OWASP category"; "findings"; "share" ] in
  let rows =
    List.map
      (fun (cat, n) ->
        [
          Patchitpy.Owasp.name cat;
          string_of_int n;
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int n /. float_of_int total);
        ])
      breakdown
  in
  Tables.render ~header ~rows

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Err of string * int

type st = { src : string; mutable pos : int }

let fail st msg = raise (Err (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encodes a Unicode scalar value as UTF-8. *)
let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      (match peek st with
      | Some c when c >= '0' && c <= '9' -> v := (!v * 16) + Char.code c - 48
      | Some c when c >= 'a' && c <= 'f' -> v := (!v * 16) + Char.code c - 87
      | Some c when c >= 'A' && c <= 'F' -> v := (!v * 16) + Char.code c - 55
      | Some _ | None -> fail st "invalid \\u escape");
      advance st
    done;
    !v
  in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'u' ->
        advance st;
        let code = hex4 () in
        utf8_of_code buf code;
        (* hex4 leaves the cursor after the escape; compensate for the
           unconditional advance below *)
        st.pos <- st.pos - 1
      | Some c -> fail st (Printf.sprintf "invalid escape \\%c" c)
      | None -> fail st "dangling backslash");
      advance st;
      loop ())
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    advance st;
    consume (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with
    | Some ('+' | '-') -> advance st
    | Some _ | None -> ());
    consume (fun c -> c >= '0' && c <= '9')
  | Some _ | None -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st (Printf.sprintf "invalid number %S" text)

(* Nesting bound: the parser recurses once per container level, so an
   adversarial payload of a few hundred thousand '[' bytes would
   otherwise turn into a stack overflow — fatal in a server accepting
   untrusted requests.  255 levels is far beyond any document this
   project produces or consumes. *)
let max_depth = 255

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | Some _ | None -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | Some _ | None -> fail st "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse source =
  let st = { src = source; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    (match peek st with
    | Some _ -> fail st "trailing garbage"
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Err (msg, pos) -> Error (Printf.sprintf "at offset %d: %s" pos msg)
  (* The depth bound should make this unreachable; kept as a last line
     of defense so no input can crash a caller. *)
  | exception Stack_overflow -> Error "at offset 0: nesting too deep"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_number = function Num n -> Some n | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

(** Precomputed line-start index for a source buffer.

    Built once per scanned source, then every finding's (line, column)
    is a binary search instead of a rescan from byte 0 — the seed
    engine's [line_of_offset] was linear per finding, i.e. quadratic on
    finding-dense files. *)

type t

val build : string -> t
(** One pass over the source, recording every line-start offset. *)

val update : t -> Edit.t list -> t
(** [update t edits] is the index of [Edit.apply source edits] computed
    incrementally from the index of [source]: line starts before the
    first edit are kept, starts inside edited spans are replaced by the
    newline positions of each replacement text, and starts after an edit
    are shifted by its byte delta — O(starts + Σ|repl|) instead of a
    full O(|new source|) rebuild per patch round.  [edits] must satisfy
    [Edit.valid] for the indexed source. *)

val line_start : t -> int -> int
(** [line_start t l] is the byte offset of 1-based line [l], clamped to
    the first/last line. *)

val line_count : t -> int

val line_end_offset : t -> source:string -> int -> int
(** One past the last byte of 1-based line [l] (excluding its
    newline): the start of line [l+1] minus one, or [String.length
    source] for the last line. *)

val line : t -> int -> int
(** [line t offset] is the 1-based line containing [offset].  Offsets
    past the end of the source report the last line, matching the seed
    engine's clamping behaviour. *)

val column : t -> int -> int
(** [column t offset] is the 0-based column of [offset] within its
    line. *)

(** Precomputed line-start index for a source buffer.

    Built once per scanned source, then every finding's (line, column)
    is a binary search instead of a rescan from byte 0 — the seed
    engine's [line_of_offset] was linear per finding, i.e. quadratic on
    finding-dense files. *)

type t

val build : string -> t
(** One pass over the source, recording every line-start offset. *)

val line : t -> int -> int
(** [line t offset] is the 1-based line containing [offset].  Offsets
    past the end of the source report the last line, matching the seed
    engine's clamping behaviour. *)

val column : t -> int -> int
(** [column t offset] is the 0-based column of [offset] within its
    line. *)

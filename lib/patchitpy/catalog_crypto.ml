(* Cryptographic-failure rules (OWASP A02): weak algorithms, weak
   randomness, certificate validation, cleartext transport, hard-coded
   credentials.  PIT-021 .. PIT-044. *)

let r = Rule.make

let compiled =
  lazy
  [
    r ~id:"PIT-021" ~title:"MD5 is a broken hash algorithm"
      ~cwe:327 ~severity:Rule.High
      ~pattern:{|hashlib\.md5\(|}
      ~suppress:{|usedforsecurity\s*=\s*False|}
      ~fix:(Rule.Replace_template "hashlib.sha256(")
      ~note:"Use SHA-256 or stronger for any security-relevant hashing." ();
    r ~id:"PIT-022" ~title:"SHA-1 is a broken hash algorithm"
      ~cwe:327 ~severity:Rule.High
      ~pattern:{|hashlib\.sha1\(|}
      ~suppress:{|usedforsecurity\s*=\s*False|}
      ~fix:(Rule.Replace_template "hashlib.sha256(")
      ~note:"Use SHA-256 or stronger for any security-relevant hashing." ();
    r ~id:"PIT-023" ~title:"Weak algorithm selected via hashlib.new()"
      ~cwe:328 ~severity:Rule.High
      ~pattern:{|hashlib\.new\(\s*["'](?:md5|md4|sha1)["']|}
      ~fix:(Rule.Replace_template {|hashlib.new("sha256"|})
      ~note:"Select a strong digest (sha256/sha512) in hashlib.new." ();
    r ~id:"PIT-024" ~title:"DES is obsolete"
      ~cwe:327 ~severity:Rule.High
      ~pattern:{|\bDES3?\.new\(|}
      ~fix:(Rule.Replace_template "AES.new(")
      ~imports:[ "from Crypto.Cipher import AES" ]
      ~note:"Use AES (GCM mode) instead of DES/3DES; check key length." ();
    r ~id:"PIT-025" ~title:"RC4 is obsolete"
      ~cwe:327 ~severity:Rule.High
      ~pattern:{|\bARC4\.new\(|}
      ~fix:(Rule.Replace_template "AES.new(")
      ~imports:[ "from Crypto.Cipher import AES" ]
      ~note:"Use AES (GCM mode) instead of RC4; check key/nonce handling." ();
    r ~id:"PIT-026" ~title:"AES in ECB mode leaks plaintext structure"
      ~cwe:327 ~severity:Rule.High
      ~pattern:{|AES\.new\(([^)\n]*),\s*AES\.MODE_ECB|}
      ~fix:(Rule.Replace_template "AES.new($1, AES.MODE_GCM")
      ~note:"Use an authenticated mode such as GCM." ();
    r ~id:"PIT-027" ~title:"random module used for a security value"
      ~cwe:330 ~severity:Rule.High
      ~pattern:
        {|\b(\w*(?:secret|token|key|password|nonce|salt|otp|session)\w*)\s*=\s*random\.(random|randint|choice|randrange|getrandbits|randbytes)\(|}
      ~fix:(Rule.Replace_template "$1 = secrets.SystemRandom().$2(")
      ~imports:[ "import secrets" ]
      ~note:"Derive security values from the secrets module, not random." ();
    r ~id:"PIT-028" ~title:"uuid1() embeds host and time, not randomness"
      ~cwe:330 ~severity:Rule.Medium
      ~pattern:{|uuid\.uuid1\(\)|}
      ~fix:(Rule.Replace_template "uuid.uuid4()")
      ~note:"uuid4 is random; uuid1 is predictable and identifying." ();
    r ~id:"PIT-029" ~title:"RSA key below 2048 bits"
      ~cwe:326 ~severity:Rule.High
      ~pattern:{|RSA\.generate\(\s*(?:512|768|1024)\b|}
      ~fix:(Rule.Replace_template "RSA.generate(2048")
      ~note:"Generate RSA keys of at least 2048 bits." ();
    r ~id:"PIT-030" ~title:"Key size parameter below 2048 bits"
      ~cwe:326 ~severity:Rule.High
      ~pattern:{|key_size\s*=\s*(?:512|768|1024)\b|}
      ~fix:(Rule.Replace_template "key_size=2048")
      ~note:"Generate asymmetric keys of at least 2048 bits." ();
    r ~id:"PIT-031" ~title:"TLS certificate verification disabled"
      ~cwe:295 ~severity:Rule.High
      ~pattern:
        {|(requests\.(?:get|post|put|delete|head|patch|request)\([^)\n]*)verify\s*=\s*False|}
      ~fix:(Rule.Replace_template "$1verify=True")
      ~note:"Never disable certificate verification in production." ();
    r ~id:"PIT-032" ~title:"Unverified SSL context"
      ~cwe:295 ~severity:Rule.High
      ~pattern:{|ssl\._create_unverified_context\(|}
      ~fix:(Rule.Replace_template "ssl.create_default_context(")
      ~note:"Use ssl.create_default_context, which verifies certificates." ();
    r ~id:"PIT-033" ~title:"Certificate requirement disabled (CERT_NONE)"
      ~cwe:295 ~severity:Rule.High
      ~pattern:{|cert_reqs\s*=\s*ssl\.CERT_NONE|}
      ~fix:(Rule.Replace_template "cert_reqs=ssl.CERT_REQUIRED")
      ~note:"Require certificates on TLS sockets." ();
    r ~id:"PIT-034" ~title:"Hostname checking disabled"
      ~cwe:295 ~severity:Rule.High
      ~pattern:{|\.check_hostname\s*=\s*False|}
      ~fix:(Rule.Replace_template ".check_hostname = True")
      ~note:"Hostname verification must stay on." ();
    r ~id:"PIT-035" ~title:"Paramiko auto-accepts unknown host keys"
      ~cwe:295 ~severity:Rule.High
      ~pattern:{|set_missing_host_key_policy\(\s*paramiko\.AutoAddPolicy\(\)\s*\)|}
      ~fix:
        (Rule.Replace_template
           "set_missing_host_key_policy(paramiko.RejectPolicy())")
      ~note:"Reject unknown host keys; provision known_hosts instead." ();
    r ~id:"PIT-036" ~title:"Obsolete SSL/TLS protocol version"
      ~cwe:326 ~severity:Rule.High
      ~pattern:{|ssl\.PROTOCOL_(?:SSLv2|SSLv3|SSLv23|TLSv1|TLSv1_1)\b|}
      ~fix:(Rule.Replace_template "ssl.PROTOCOL_TLS_CLIENT")
      ~note:"Negotiate TLS 1.2+ via PROTOCOL_TLS_CLIENT." ();
    r ~id:"PIT-037" ~title:"Telnet transmits credentials in cleartext"
      ~cwe:319 ~severity:Rule.High
      ~pattern:{|telnetlib\.Telnet\(|}
      ~note:"Use SSH (paramiko) instead of telnet." ();
    r ~id:"PIT-038" ~title:"Plain FTP transmits credentials in cleartext"
      ~cwe:319 ~severity:Rule.High
      ~pattern:{|ftplib\.FTP\(|}
      ~fix:(Rule.Replace_template "ftplib.FTP_TLS(")
      ~note:"Use FTPS (FTP_TLS) or SFTP." ();
    r ~id:"PIT-039" ~title:"Sensitive request over plain HTTP"
      ~cwe:319 ~severity:Rule.Medium
      ~pattern:{|(requests\.\w+\(\s*f?["'])http://|}
      ~suppress:{|localhost|127\.0\.0\.1|}
      ~fix:(Rule.Replace_template "$1https://")
      ~note:"Use HTTPS endpoints." ();
    r ~id:"PIT-040" ~title:"Hard-coded password assignment"
      ~cwe:798 ~severity:Rule.Critical
      ~pattern:{|^(\s*)(\w*[Pp]assword\w*)\s*=\s*["'][^"'\n]+["']\s*$|}
      ~suppress:{|os\.environ|getpass|input\(|}
      ~fix:(Rule.Replace_template {|$1$2 = os.environ.get("APP_PASSWORD", "")|})
      ~imports:[ "import os" ]
      ~note:"Read credentials from the environment or a secret store." ();
    r ~id:"PIT-041" ~title:"Hard-coded password keyword argument"
      ~cwe:259 ~severity:Rule.Critical
      ~pattern:{|\b(password|passwd|pwd)\s*=\s*["'][^"'\n]+["']\s*([,)])|}
      ~suppress:{|os\.environ|}
      ~fix:(Rule.Replace_template {|$1=os.environ.get("DB_PASSWORD", "")$2|})
      ~imports:[ "import os" ]
      ~note:"Read credentials from the environment or a secret store." ();
    r ~id:"PIT-042" ~title:"Hard-coded application secret key"
      ~cwe:321 ~severity:Rule.Critical
      ~pattern:{|(app\.secret_key|\w*SECRET_KEY\w*)\s*=\s*["'][^"'\n]+["']|}
      ~suppress:{|os\.environ|secrets\.|}
      ~fix:(Rule.Replace_template {|$1 = os.environ.get("SECRET_KEY", "")|})
      ~imports:[ "import os" ]
      ~note:"Load secret keys from the environment." ();
    r ~id:"PIT-043" ~title:"Password hashed with a single fast hash"
      ~cwe:916 ~severity:Rule.High
      ~pattern:{|hashlib\.(?:sha256|sha512|sha1|md5)\(\s*(password\w*)((?:\.encode\(\))?)\s*\)|}
      ~suppress:{|pbkdf2|}
      ~fix:
        (Rule.Replace_template
           {|hashlib.pbkdf2_hmac("sha256", $1.encode(), os.urandom(16), 100000)|})
      ~imports:[ "import os" ]
      ~note:"Use a slow KDF (pbkdf2/bcrypt/scrypt) with a random salt." ();
    r ~id:"PIT-044" ~title:"JWT accepted without signature verification"
      ~cwe:347 ~severity:Rule.High
      ~pattern:{|(jwt\.decode\([^)\n]*?)(verify\s*=\s*False|["']verify_signature["']\s*:\s*False)|}
      ~fix:
        (Rule.Rewrite
           Rewrite.
             [ Str (Grp 1, []);
               Cond
                 ( { subject = Grp 2; via = []; test = Starts_with "v" },
                   [ Lit "verify=True" ],
                   [ Lit {|"verify_signature": True|} ] ) ])
      ~note:"Verify JWT signatures; unverified tokens are attacker input." ();
  ]

let rules () = Lazy.force compiled

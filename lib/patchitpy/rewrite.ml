(* A declarative rewrite IR: the computed part of a rule's fix expressed
   as data instead of an OCaml closure, so rules can be serialized into
   rule packs (DESIGN.md, "Rule IR and pack format") and inspected
   without running code.

   A template is a list of ops appended in order.  Every op draws on the
   rule-pattern match: a literal, a (transformed) captured group, or a
   conditional choosing between two sub-templates based on a test over a
   (transformed) group.  The transform list covers exactly what the
   catalog's rewrites need — trimming, case mapping, suffix dropping and
   regex substitution — with [Subst_each]/[Join_each] recursing into a
   sub-template evaluated against each inner match (placeholder-to-[?]
   conversion, per-interpolation escaping). *)

type src = Whole | Grp of int

type xform =
  | Trim
  | Uppercase
  | Lowercase
  | Drop_last of int
  | Subst of { pat : string; with_ : string }
  | Subst_each of { pat : string; body : tmpl }
  | Join_each of { pat : string; body : tmpl; sep : string }

and test =
  | Is_empty
  | Starts_with of string
  | Ends_with of string
  | Contains of string
  | Min_matches of string * int

and cond = { subject : src; via : xform list; test : test }
and op = Lit of string | Str of src * xform list | Cond of cond * tmpl * tmpl
and tmpl = op list

type t = tmpl

(* --- evaluation ----------------------------------------------------------- *)

(* [Rx.compile] memoizes per pattern source, so compiling an embedded
   pattern at every evaluation is a table lookup after the first fix —
   the same cost profile the closures had. *)

let src_text m = function
  | Whole -> Rx.matched m
  | Grp i -> Option.value (Rx.group m i) ~default:""

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  if lb = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= ls - lb do
      if String.sub s !i lb = sub then found := true else incr i
    done;
    !found
  end

let rec apply_xform s = function
  | Trim -> String.trim s
  | Uppercase -> String.uppercase_ascii s
  | Lowercase -> String.lowercase_ascii s
  | Drop_last n ->
    if String.length s <= n then "" else String.sub s 0 (String.length s - n)
  | Subst { pat; with_ } -> Rx.replace (Rx.compile pat) ~template:with_ s
  | Subst_each { pat; body } ->
    Rx.replace_f (Rx.compile pat) ~f:(fun im -> eval body im) s
  | Join_each { pat; body; sep } ->
    String.concat sep
      (List.map (fun im -> eval body im) (Rx.find_all (Rx.compile pat) s))

and holds s = function
  | Is_empty -> s = ""
  | Starts_with p -> String.starts_with ~prefix:p s
  | Ends_with p -> String.ends_with ~suffix:p s
  | Contains p -> contains_sub s p
  | Min_matches (pat, n) ->
    List.length (Rx.find_all (Rx.compile pat) s) >= n

and eval_op buf m = function
  | Lit s -> Buffer.add_string buf s
  | Str (src, xs) ->
    Buffer.add_string buf (List.fold_left apply_xform (src_text m src) xs)
  | Cond ({ subject; via; test }, then_, else_) ->
    let s = List.fold_left apply_xform (src_text m subject) via in
    List.iter (eval_op buf m) (if holds s test then then_ else else_)

and eval t m =
  let buf = Buffer.create 64 in
  List.iter (eval_op buf m) t;
  Buffer.contents buf

(* --- validation ----------------------------------------------------------- *)

(* Every embedded regex must compile: rule packs call this at load so a
   corrupt IR is a typed error, not a later Parse_error mid-patch. *)

let rec validate_xform = function
  | Trim | Uppercase | Lowercase -> Ok ()
  | Drop_last n -> if n >= 0 then Ok () else Error "drop-last: negative count"
  | Subst { pat; _ } -> Result.map ignore (Rx.compile_opt pat)
  | Subst_each { pat; body } ->
    Result.bind (Result.map ignore (Rx.compile_opt pat)) (fun () ->
        validate body)
  | Join_each { pat; body; _ } ->
    Result.bind (Result.map ignore (Rx.compile_opt pat)) (fun () ->
        validate body)

and validate_test = function
  | Is_empty | Starts_with _ | Ends_with _ | Contains _ -> Ok ()
  | Min_matches (pat, _) -> Result.map ignore (Rx.compile_opt pat)

and validate_xforms xs =
  List.fold_left
    (fun acc x -> Result.bind acc (fun () -> validate_xform x))
    (Ok ()) xs

and validate_op = function
  | Lit _ -> Ok ()
  | Str (_, xs) -> validate_xforms xs
  | Cond ({ via; test; _ }, then_, else_) ->
    Result.bind (validate_xforms via) (fun () ->
        Result.bind (validate_test test) (fun () ->
            Result.bind (validate then_) (fun () -> validate else_)))

and validate t =
  List.fold_left
    (fun acc o -> Result.bind acc (fun () -> validate_op o))
    (Ok ()) t

(* --- textual form ---------------------------------------------------------

   A small s-expression syntax, used both as the IR's storage encoding
   inside rule packs and for inspection ([rules inspect]).  Grammar:

     tmpl  ::= (op ...)
     op    ::= (lit S) | (str SRC XFORM ...)
             | (cond SRC (XFORM ...) TEST tmpl tmpl)
     src   ::= whole | (grp N)
     xform ::= trim | upper | lower | (drop-last N)
             | (subst S S) | (subst-each S tmpl) | (join-each S S tmpl)
     test  ::= empty | (starts-with S) | (ends-with S) | (contains S)
             | (min-matches S N)

   where S is a double-quoted string (backslash escapes for the quote,
   the backslash itself, n/t/r and \xHH for other bytes) and N a
   decimal integer. *)

let quote buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let render_src buf = function
  | Whole -> Buffer.add_string buf "whole"
  | Grp i -> Buffer.add_string buf (Printf.sprintf "(grp %d)" i)

let rec render_xform buf = function
  | Trim -> Buffer.add_string buf "trim"
  | Uppercase -> Buffer.add_string buf "upper"
  | Lowercase -> Buffer.add_string buf "lower"
  | Drop_last n -> Buffer.add_string buf (Printf.sprintf "(drop-last %d)" n)
  | Subst { pat; with_ } ->
    Buffer.add_string buf "(subst ";
    quote buf pat;
    Buffer.add_char buf ' ';
    quote buf with_;
    Buffer.add_char buf ')'
  | Subst_each { pat; body } ->
    Buffer.add_string buf "(subst-each ";
    quote buf pat;
    Buffer.add_char buf ' ';
    render_tmpl buf body;
    Buffer.add_char buf ')'
  | Join_each { pat; body; sep } ->
    Buffer.add_string buf "(join-each ";
    quote buf pat;
    Buffer.add_char buf ' ';
    quote buf sep;
    Buffer.add_char buf ' ';
    render_tmpl buf body;
    Buffer.add_char buf ')'

and render_test buf = function
  | Is_empty -> Buffer.add_string buf "empty"
  | Starts_with s ->
    Buffer.add_string buf "(starts-with ";
    quote buf s;
    Buffer.add_char buf ')'
  | Ends_with s ->
    Buffer.add_string buf "(ends-with ";
    quote buf s;
    Buffer.add_char buf ')'
  | Contains s ->
    Buffer.add_string buf "(contains ";
    quote buf s;
    Buffer.add_char buf ')'
  | Min_matches (pat, n) ->
    Buffer.add_string buf "(min-matches ";
    quote buf pat;
    Buffer.add_string buf (Printf.sprintf " %d)" n)

and render_op buf = function
  | Lit s ->
    Buffer.add_string buf "(lit ";
    quote buf s;
    Buffer.add_char buf ')'
  | Str (src, xs) ->
    Buffer.add_string buf "(str ";
    render_src buf src;
    List.iter
      (fun x ->
        Buffer.add_char buf ' ';
        render_xform buf x)
      xs;
    Buffer.add_char buf ')'
  | Cond ({ subject; via; test }, then_, else_) ->
    Buffer.add_string buf "(cond ";
    render_src buf subject;
    Buffer.add_string buf " (";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        render_xform buf x)
      via;
    Buffer.add_string buf ") ";
    render_test buf test;
    Buffer.add_char buf ' ';
    render_tmpl buf then_;
    Buffer.add_char buf ' ';
    render_tmpl buf else_;
    Buffer.add_char buf ')'

and render_tmpl buf t =
  Buffer.add_char buf '(';
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ' ';
      render_op buf o)
    t;
  Buffer.add_char buf ')'

let render t =
  let buf = Buffer.create 128 in
  render_tmpl buf t;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------------- *)

type sexp = Atom of string | Quoted of string | Node of sexp list

exception Bad of string

let parse_sexp s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t'
                       || s.[!pos] = '\r') do
      incr pos
    done
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Bad "bad hex escape")
  in
  let read_string () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        if !pos + 1 >= n then raise (Bad "unterminated escape");
        (match s.[!pos + 1] with
        | '"' -> Buffer.add_char buf '"'; pos := !pos + 2
        | '\\' -> Buffer.add_char buf '\\'; pos := !pos + 2
        | 'n' -> Buffer.add_char buf '\n'; pos := !pos + 2
        | 't' -> Buffer.add_char buf '\t'; pos := !pos + 2
        | 'r' -> Buffer.add_char buf '\r'; pos := !pos + 2
        | 'x' ->
          if !pos + 3 >= n then raise (Bad "unterminated \\x escape");
          Buffer.add_char buf
            (Char.chr ((hex s.[!pos + 2] * 16) + hex s.[!pos + 3]));
          pos := !pos + 4
        | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec read_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Bad "unexpected end of input")
    | Some '(' ->
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | None -> raise (Bad "unbalanced parenthesis")
        | Some ')' -> incr pos
        | Some _ ->
          items := read_one () :: !items;
          loop ()
      in
      loop ();
      Node (List.rev !items)
    | Some ')' -> raise (Bad "unexpected ')'")
    | Some '"' -> Quoted (read_string ())
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && not
             (s.[!pos] = ' ' || s.[!pos] = '(' || s.[!pos] = ')'
              || s.[!pos] = '"' || s.[!pos] = '\n' || s.[!pos] = '\t'
              || s.[!pos] = '\r')
      do
        incr pos
      done;
      Atom (String.sub s start (!pos - start))
  in
  let e = read_one () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing input after template");
  e

let int_atom = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some i -> i
    | None -> raise (Bad ("expected integer, got " ^ a)))
  | _ -> raise (Bad "expected integer")

let str_arg = function
  | Quoted s -> s
  | _ -> raise (Bad "expected quoted string")

let src_of_sexp = function
  | Atom "whole" -> Whole
  | Node [ Atom "grp"; i ] -> Grp (int_atom i)
  | _ -> raise (Bad "expected source (whole | (grp N))")

let rec xform_of_sexp = function
  | Atom "trim" -> Trim
  | Atom "upper" -> Uppercase
  | Atom "lower" -> Lowercase
  | Node [ Atom "drop-last"; n ] -> Drop_last (int_atom n)
  | Node [ Atom "subst"; p; w ] -> Subst { pat = str_arg p; with_ = str_arg w }
  | Node [ Atom "subst-each"; p; body ] ->
    Subst_each { pat = str_arg p; body = tmpl_of_sexp body }
  | Node [ Atom "join-each"; p; sep; body ] ->
    Join_each { pat = str_arg p; sep = str_arg sep; body = tmpl_of_sexp body }
  | _ -> raise (Bad "expected transform")

and test_of_sexp = function
  | Atom "empty" -> Is_empty
  | Node [ Atom "starts-with"; s ] -> Starts_with (str_arg s)
  | Node [ Atom "ends-with"; s ] -> Ends_with (str_arg s)
  | Node [ Atom "contains"; s ] -> Contains (str_arg s)
  | Node [ Atom "min-matches"; p; n ] -> Min_matches (str_arg p, int_atom n)
  | _ -> raise (Bad "expected test")

and op_of_sexp = function
  | Node (Atom "lit" :: [ s ]) -> Lit (str_arg s)
  | Node (Atom "str" :: src :: xs) ->
    Str (src_of_sexp src, List.map xform_of_sexp xs)
  | Node [ Atom "cond"; subject; Node via; test; then_; else_ ] ->
    Cond
      ( { subject = src_of_sexp subject;
          via = List.map xform_of_sexp via;
          test = test_of_sexp test },
        tmpl_of_sexp then_, tmpl_of_sexp else_ )
  | _ -> raise (Bad "expected op ((lit S) | (str ...) | (cond ...))")

and tmpl_of_sexp = function
  | Node ops -> List.map op_of_sexp ops
  | _ -> raise (Bad "expected template list")

let parse s =
  match tmpl_of_sexp (parse_sexp s) with
  | t -> Ok t
  | exception Bad msg -> Error msg

(* --- builder shorthands ---------------------------------------------------

   Used by the catalogs; they keep the ported rules close to the shape
   of the closures they replace. *)

let lit s = Lit s
let grp ?(via = []) i = Str (Grp i, via)
let whole ?(via = []) () = Str (Whole, via)

let cond ?(via = []) subject test ~then_ ~else_ =
  Cond ({ subject; via; test }, then_, else_)

let subst pat with_ = Subst { pat; with_ }

type application = { rule : Rule.t; line : int; before : string; after : string }

type result = {
  original : string;
  patched : string;
  applications : application list;
  imports_added : string list;
  remaining : Engine.finding list;
  rounds_used : int;
  converged : bool;
}

(* Patch-round telemetry: how patching terminates (fixpoint vs the
   round cap), how much work each round does, and what the import
   manager adds and removes — the counters behind the paper's
   convergence discussion.  All no-ops unless a sink is installed. *)
let rounds_histogram = Telemetry.Histogram.make "patcher_rounds"

let applications_per_round_histogram =
  Telemetry.Histogram.make "patcher_applications_per_round"

let patch_span = Telemetry.Histogram.make "patcher_patch_ns"
let applications_counter = Telemetry.Counter.make "patcher_applications_total"
let imports_added_counter = Telemetry.Counter.make "patcher_imports_added_total"

let imports_removed_counter =
  Telemetry.Counter.make "patcher_imports_removed_total"

let fixpoint_counter = Telemetry.Counter.make "patcher_fixpoint_total"
let round_cap_counter = Telemetry.Counter.make "patcher_round_cap_total"

let render_fix (rule : Rule.t) (m : Rx.m) =
  match rule.Rule.fix with
  | Rule.No_fix -> None
  | Rule.Replace_template template -> Some (Rx.expand_template m template)
  | Rule.Rewrite f -> Some (f m)

(* Applies one round of fixes: every fixable, non-overlapping finding is
   replaced, working right-to-left so offsets stay valid. *)
let apply_round source findings =
  let fixable =
    List.filter (fun (f : Engine.finding) -> Rule.fixable f.Engine.rule) findings
  in
  (* Keep the first of any overlapping pair (scan order = offset order). *)
  let non_overlapping =
    List.rev
      (List.fold_left
         (fun acc (f : Engine.finding) ->
           match acc with
           | prev :: _ when f.Engine.offset < prev.Engine.stop -> acc
           | _ -> f :: acc)
         [] fixable)
  in
  let applied = ref [] in
  let patched =
    List.fold_left
      (fun src (f : Engine.finding) ->
        match render_fix f.Engine.rule f.Engine.m with
        | None -> src
        | Some replacement ->
          let before = String.sub src f.Engine.offset (f.Engine.stop - f.Engine.offset) in
          if replacement = before then src
          else begin
            applied :=
              { rule = f.Engine.rule; line = f.Engine.line; before;
                after = replacement }
              :: !applied;
            String.sub src 0 f.Engine.offset
            ^ replacement
            ^ String.sub src f.Engine.stop (String.length src - f.Engine.stop)
          end)
      source
      (List.rev non_overlapping (* right-to-left *))
  in
  (patched, List.rev !applied)

let import_line_rx = Rx.compile {|^(?:import\s|from\s)|}

let insert_imports source imports =
  let lines = String.split_on_char '\n' source in
  let existing line = List.exists (fun l -> String.trim l = line) lines in
  let to_add = List.filter (fun imp -> not (existing imp)) imports in
  let to_add = List.sort_uniq compare to_add in
  if to_add = [] then (source, [])
  else begin
    (* Insertion point: after shebang, module docstring and the leading
       import block. *)
    let arr = Array.of_list lines in
    let n = Array.length arr in
    let i = ref 0 in
    let peek j = if j < n then Some arr.(j) else None in
    (match peek !i with
    | Some l when String.length l >= 2 && String.sub l 0 2 = "#!" -> incr i
    | Some _ | None -> ());
    (* docstring: a line starting with triple quotes; skip to its end *)
    (match peek !i with
    | Some l ->
      let t = String.trim l in
      let quote =
        if String.length t >= 3 && String.sub t 0 3 = "\"\"\"" then Some "\"\"\""
        else if String.length t >= 3 && String.sub t 0 3 = "'''" then Some "'''"
        else None
      in
      (match quote with
      | None -> ()
      | Some q ->
        let count_q s =
          let rec go from acc =
            match
              if from + 3 <= String.length s then
                Some (String.sub s from 3 = q)
              else None
            with
            | None -> acc
            | Some true -> go (from + 3) (acc + 1)
            | Some false -> go (from + 1) acc
          in
          go 0 0
        in
        if count_q t >= 2 then incr i (* one-line docstring *)
        else begin
          let rec fwd j =
            if j >= n then i := n
            else if count_q arr.(j) >= 1 then i := j + 1
            else fwd (j + 1)
          in
          fwd (!i + 1)
        end)
    | None -> ());
    (* comment/blank prologue and import block *)
    let rec advance () =
      match peek !i with
      | Some l ->
        let t = String.trim l in
        if t = "" || (String.length t > 0 && t.[0] = '#')
           || Rx.matches import_line_rx t
        then begin
          incr i;
          advance ()
        end
      | None -> ()
    in
    advance ();
    let before = Array.to_list (Array.sub arr 0 !i) in
    let after = Array.to_list (Array.sub arr !i (n - !i)) in
    let patched = String.concat "\n" (before @ to_add @ after) in
    (patched, to_add)
  end

(* After rewriting, imports whose module the code no longer references
   are stale (e.g. "import pickle" after pickle.loads became json.loads);
   they are dropped so the patch leaves clean code behind. *)
let import_binding_rx = Rx.compile {|^import\s+([A-Za-z_][\w.]*)\s*$|}

let remove_stale_imports_counted source =
  let lines = String.split_on_char '\n' source in
  let binding_of line =
    let t = String.trim line in
    match Rx.exec import_binding_rx t with
    | Some m ->
      let full = Option.value (Rx.group m 1) ~default:"" in
      let root =
        match String.index_opt full '.' with
        | Some i -> String.sub full 0 i
        | None -> full
      in
      Some root
    | None -> None
  in
  (* Classify each line once; [used] then compiles one \bname\b regex per
     distinct import and checks it against the non-import lines only. *)
  let bindings = List.map (fun line -> (line, binding_of line)) lines in
  let code_lines =
    List.filter_map
      (fun (line, binding) -> if binding = None then Some line else None)
      bindings
  in
  let used name =
    let rx = Rx.compile ("\\b" ^ name ^ "\\b") in
    List.exists (fun line -> Rx.matches rx line) code_lines
  in
  let removed = ref 0 in
  let kept =
    bindings
    |> List.filter_map (fun (line, binding) ->
           match binding with
           | Some name ->
             if used name then Some line
             else begin
               incr removed;
               None
             end
           | None -> Some line)
    |> String.concat "\n"
  in
  (kept, !removed)

let default_rounds = 4

let patch ?rules ?(rounds = default_rounds) ?(manage_imports = true) source =
  Telemetry.Span.record patch_span @@ fun () ->
  (* One scan plan for every fix round and the final residue scan. *)
  let scanner =
    match rules with
    | None -> Engine.default_scanner ()
    | Some rules -> Scanner.compile rules
  in
  (* [rev_acc] holds the applications newest-first; a single reverse at
     the end replaces the seed's quadratic [acc @ apps] per round.
     [used] counts rounds that applied at least one fix; [converged]
     tells a reached fixpoint (a round found nothing left to fix) from
     a run cut off by the round cap with fixable findings possibly
     remaining. *)
  let rec run src rev_acc used n =
    if n = 0 then (src, List.rev rev_acc, used, false)
    else begin
      let findings = Scanner.scan scanner src in
      let patched, apps = apply_round src findings in
      if apps = [] then (src, List.rev rev_acc, used, true)
      else begin
        Telemetry.Histogram.observe applications_per_round_histogram
          (List.length apps);
        run patched (List.rev_append apps rev_acc) (used + 1) (n - 1)
      end
    end
  in
  let patched, applications, rounds_used, converged = run source [] 0 rounds in
  Telemetry.Histogram.observe rounds_histogram rounds_used;
  Telemetry.Counter.incr applications_counter ~by:(List.length applications);
  Telemetry.Counter.incr (if converged then fixpoint_counter else round_cap_counter);
  let needed_imports =
    List.concat_map (fun a -> a.rule.Rule.imports) applications
  in
  let patched, imports_added =
    if applications = [] || not manage_imports then (patched, [])
    else begin
      let patched, removed = remove_stale_imports_counted patched in
      Telemetry.Counter.incr imports_removed_counter ~by:removed;
      insert_imports patched needed_imports
    end
  in
  Telemetry.Counter.incr imports_added_counter ~by:(List.length imports_added);
  let remaining = Scanner.scan scanner patched in
  {
    original = source;
    patched;
    applications;
    imports_added;
    remaining;
    rounds_used;
    converged;
  }

let changed r = r.patched <> r.original

type application = { rule : Rule.t; line : int; before : string; after : string }

type result = {
  original : string;
  patched : string;
  applications : application list;
  imports_added : string list;
  remaining : Engine.finding list;
  rounds_used : int;
  converged : bool;
}

(* Patch-round telemetry: how patching terminates (fixpoint vs the
   round cap), how much work each round does, and what the import
   manager adds and removes — the counters behind the paper's
   convergence discussion.  All no-ops unless a sink is installed. *)
let rounds_histogram = Telemetry.Histogram.make "patcher_rounds"

let applications_per_round_histogram =
  Telemetry.Histogram.make "patcher_applications_per_round"

let patch_span = Telemetry.Histogram.make "patcher_patch_ns"
let applications_counter = Telemetry.Counter.make "patcher_applications_total"
let imports_added_counter = Telemetry.Counter.make "patcher_imports_added_total"

let imports_removed_counter =
  Telemetry.Counter.make "patcher_imports_removed_total"

let fixpoint_counter = Telemetry.Counter.make "patcher_fixpoint_total"
let round_cap_counter = Telemetry.Counter.make "patcher_round_cap_total"

let render_fix (rule : Rule.t) (m : Rx.m) =
  match rule.Rule.fix with
  | Rule.No_fix -> None
  | Rule.Replace_template template -> Some (Rx.expand_template m template)
  | Rule.Rewrite ir -> Some (Rewrite.eval ir m)

(* One round of fixes as an edit list: every fixable, non-overlapping
   finding whose replacement differs from the matched text becomes one
   {!Edit.t}.  The whole round then materializes in a single pass
   through an edit buffer instead of one string splice per application.
   Returned edits ascend by offset; applications descend, matching the
   order the splicing patcher reported them in. *)
let apply_round_edits source findings =
  let fixable =
    List.filter (fun (f : Engine.finding) -> Rule.fixable f.Engine.rule) findings
  in
  (* Keep the first of any overlapping pair (scan order = offset order). *)
  let non_overlapping =
    List.rev
      (List.fold_left
         (fun acc (f : Engine.finding) ->
           match acc with
           | prev :: _ when f.Engine.offset < prev.Engine.stop -> acc
           | _ -> f :: acc)
         [] fixable)
  in
  let apps = ref [] and edits = ref [] in
  List.iter
    (fun (f : Engine.finding) ->
      match render_fix f.Engine.rule f.Engine.m with
      | None -> ()
      | Some replacement ->
        let before =
          String.sub source f.Engine.offset (f.Engine.stop - f.Engine.offset)
        in
        if replacement <> before then begin
          apps :=
            { rule = f.Engine.rule; line = f.Engine.line; before;
              after = replacement }
            :: !apps;
          edits :=
            { Edit.start = f.Engine.offset; stop = f.Engine.stop;
              repl = replacement }
            :: !edits
        end)
    non_overlapping;
  (List.rev !edits, !apps)

(* Offsets of each line of [lines] in the string they were split from:
   [starts.(i)] is where 0-based line [i] begins. *)
let line_starts_of lines =
  let n = Array.length lines in
  let starts = Array.make (max n 1) 0 in
  for i = 1 to n - 1 do
    starts.(i) <- starts.(i - 1) + String.length lines.(i - 1) + 1
  done;
  starts

let import_line_rx = Rx.compile {|^(?:import\s|from\s)|}

(* The import-insertion edit: the missing import lines as one insertion
   after the shebang, module docstring and leading import block.  [None]
   when every needed import is already present. *)
let insert_import_edit source imports =
  let lines = String.split_on_char '\n' source in
  let existing line = List.exists (fun l -> String.trim l = line) lines in
  let to_add = List.filter (fun imp -> not (existing imp)) imports in
  let to_add = List.sort_uniq compare to_add in
  if to_add = [] then None
  else begin
    (* Insertion point: after shebang, module docstring and the leading
       import block. *)
    let arr = Array.of_list lines in
    let n = Array.length arr in
    let i = ref 0 in
    let peek j = if j < n then Some arr.(j) else None in
    (match peek !i with
    | Some l when String.length l >= 2 && String.sub l 0 2 = "#!" -> incr i
    | Some _ | None -> ());
    (* docstring: a line starting with triple quotes; skip to its end *)
    (match peek !i with
    | Some l ->
      let t = String.trim l in
      let quote =
        if String.length t >= 3 && String.sub t 0 3 = "\"\"\"" then Some "\"\"\""
        else if String.length t >= 3 && String.sub t 0 3 = "'''" then Some "'''"
        else None
      in
      (match quote with
      | None -> ()
      | Some q ->
        let count_q s =
          let rec go from acc =
            match
              if from + 3 <= String.length s then
                Some (String.sub s from 3 = q)
              else None
            with
            | None -> acc
            | Some true -> go (from + 3) (acc + 1)
            | Some false -> go (from + 1) acc
          in
          go 0 0
        in
        if count_q t >= 2 then incr i (* one-line docstring *)
        else begin
          let rec fwd j =
            if j >= n then i := n
            else if count_q arr.(j) >= 1 then i := j + 1
            else fwd (j + 1)
          in
          fwd (!i + 1)
        end)
    | None -> ());
    (* comment/blank prologue and import block *)
    let rec advance () =
      match peek !i with
      | Some l ->
        let t = String.trim l in
        if t = "" || (String.length t > 0 && t.[0] = '#')
           || Rx.matches import_line_rx t
        then begin
          incr i;
          advance ()
        end
      | None -> ()
    in
    advance ();
    let block = String.concat "\n" to_add in
    let edit =
      if !i >= n then
        (* append after the last line *)
        let len = String.length source in
        { Edit.start = len; stop = len; repl = "\n" ^ block }
      else
        let off = (line_starts_of arr).(!i) in
        { Edit.start = off; stop = off; repl = block ^ "\n" }
    in
    Some (edit, to_add)
  end

let insert_imports source imports =
  match insert_import_edit source imports with
  | None -> (source, [])
  | Some (edit, added) -> (Edit.apply source [ edit ], added)

(* After rewriting, imports whose module the code no longer references
   are stale (e.g. "import pickle" after pickle.loads became json.loads);
   they are dropped so the patch leaves clean code behind.  Each run of
   consecutive stale lines becomes one deletion edit spanning the lines
   and their newlines (the trailing run also consumes the newline before
   it, so no dangling separator survives). *)
let import_binding_rx = Rx.compile {|^import\s+([A-Za-z_][\w.]*)\s*$|}

(* \b<name>\b usage probes, memoized: the same module roots (os, pickle,
   yaml, ...) recur across every patched file, and compiling per call
   put regex compilation on the per-sample hot path.  The table only
   ever holds distinct import roots, so it stays small; the mutex makes
   it safe under [Par.map_samples] domains. *)
let word_rx_cache : (string, Rx.t) Hashtbl.t = Hashtbl.create 16
let word_rx_lock = Mutex.create ()

let word_rx name =
  Mutex.protect word_rx_lock (fun () ->
      match Hashtbl.find_opt word_rx_cache name with
      | Some rx -> rx
      | None ->
        let rx = Rx.compile ("\\b" ^ name ^ "\\b") in
        Hashtbl.add word_rx_cache name rx;
        rx)

let stale_import_edits source =
  let lines = String.split_on_char '\n' source in
  let binding_of line =
    let t = String.trim line in
    match Rx.exec import_binding_rx t with
    | Some m ->
      let full = Option.value (Rx.group m 1) ~default:"" in
      let root =
        match String.index_opt full '.' with
        | Some i -> String.sub full 0 i
        | None -> full
      in
      Some root
    | None -> None
  in
  (* Classify each line once; [used] then compiles one \bname\b regex per
     distinct import and checks it against the non-import lines only. *)
  let bindings = List.map (fun line -> (line, binding_of line)) lines in
  let code_lines =
    List.filter_map
      (fun (line, binding) -> if binding = None then Some line else None)
      bindings
  in
  let used name =
    let rx = word_rx name in
    List.exists (fun line -> Rx.matches rx line) code_lines
  in
  let stale =
    Array.of_list
      (List.map
         (fun (_, binding) ->
           match binding with Some name -> not (used name) | None -> false)
         bindings)
  in
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let starts = line_starts_of arr in
  let len = String.length source in
  let edits = ref [] and removed = ref 0 in
  let j = ref 0 in
  while !j < n do
    if stale.(!j) then begin
      let a = !j in
      while !j < n && stale.(!j) do
        incr j;
        incr removed
      done;
      let b = !j - 1 in
      let e =
        if b < n - 1 then
          { Edit.start = starts.(a); stop = starts.(b + 1); repl = "" }
        else if a > 0 then
          { Edit.start = starts.(a) - 1; stop = len; repl = "" }
        else { Edit.start = 0; stop = len; repl = "" }
      in
      edits := e :: !edits
    end
    else incr j
  done;
  (List.rev !edits, !removed)

let default_rounds = 4

(* Escape hatch: with PATCHITPY_FULL_RESCAN set, every round re-scans
   the whole source instead of re-scanning dirty regions.  The two modes
   are byte-identical by construction; the variable exists so a
   suspected incremental-scan bug can be ruled out in the field (and so
   CI can diff the two pipelines). *)
let full_rescan_forced () =
  match Sys.getenv_opt "PATCHITPY_FULL_RESCAN" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let patch ?scanner ?rules ?(rounds = default_rounds) ?(manage_imports = true)
    source =
  Telemetry.Span.record patch_span @@ fun () ->
  (* One scan plan for every fix round and the final residue scan.  An
     explicit [scanner] wins: batch callers (multi-file CLI, the serve
     worker pool) compile once and thread the plan through every file. *)
  let scanner =
    match (scanner, rules) with
    | Some scanner, _ -> scanner
    | None, None -> Engine.default_scanner ()
    | None, Some rules -> Scanner.compile rules
  in
  let full = full_rescan_forced () in
  (* Each advance is one fix round's re-scan (the import pass reuses it
     as its own closing round) — traced as a [Patch_round] span with the
     scan/rescan span it drives nested inside. *)
  let advance st edits =
    Telemetry.Trace.ambient_span Telemetry.Trace.Patch_round @@ fun () ->
    if full then
      Scanner.scan_state scanner (Edit.apply (Scanner.state_source st) edits)
    else Scanner.rescan scanner st edits
  in
  (* [rev_acc] holds the applications newest-first; a single reverse at
     the end replaces the seed's quadratic [acc @ apps] per round.
     [used] counts rounds that applied at least one fix; [converged]
     tells a reached fixpoint (a round found nothing left to fix) from
     a run cut off by the round cap with fixable findings possibly
     remaining.  Only the first round scans the whole source: each
     round's edits advance the scan state incrementally, and the final
     state's findings are the residue — no closing full scan. *)
  let rec run st rev_acc used n =
    if n = 0 then (st, List.rev rev_acc, used, false)
    else begin
      let findings = Scanner.state_findings scanner st in
      let edits, apps = apply_round_edits (Scanner.state_source st) findings in
      if apps = [] then (st, List.rev rev_acc, used, true)
      else begin
        Telemetry.Histogram.observe applications_per_round_histogram
          (List.length apps);
        run (advance st edits) (List.rev_append apps rev_acc) (used + 1) (n - 1)
      end
    end
  in
  let st, applications, rounds_used, converged =
    run (Scanner.scan_state scanner source) [] 0 rounds
  in
  Telemetry.Histogram.observe rounds_histogram rounds_used;
  Telemetry.Counter.incr applications_counter ~by:(List.length applications);
  Telemetry.Counter.incr (if converged then fixpoint_counter else round_cap_counter);
  let needed_imports =
    List.concat_map (fun a -> a.rule.Rule.imports) applications
  in
  let st, imports_added =
    if applications = [] || not manage_imports then (st, [])
    else begin
      (* Both import passes fold into ONE scan advance: the stale
         deletions are computed on the current source, the insertion
         point on the string with deletions applied (so the prologue
         walk sees what the sequential pipeline saw), and the insert
         edit is then mapped back through the deletions so all edits
         share the current state's coordinates.  Byte-identical to
         applying the two passes sequentially, at half the re-scans. *)
      let src = Scanner.state_source st in
      let stale_edits, removed = stale_import_edits src in
      Telemetry.Counter.incr imports_removed_counter ~by:removed;
      let deleted =
        if stale_edits = [] then src else Edit.apply src stale_edits
      in
      let insert, added =
        match insert_import_edit deleted needed_imports with
        | None -> ([], [])
        | Some (edit, added) ->
          (* preimage of the insertion offset through the deletions: the
             offset in [src] that lands where [edit.start] is in
             [deleted] (at a collapsed deletion, its start — the insert
             then sorts before the deletion and yields the same bytes) *)
          let rec back shift = function
            | [] -> edit.Edit.start - shift
            | (e : Edit.t) :: rest ->
              if e.Edit.start + shift < edit.Edit.start then
                back (shift + Edit.delta e) rest
              else edit.Edit.start - shift
          in
          let p = back 0 stale_edits in
          ([ { edit with Edit.start = p; stop = p } ], added)
      in
      let combined =
        List.sort
          (fun (a : Edit.t) (b : Edit.t) ->
            compare (a.Edit.start, a.Edit.stop) (b.Edit.start, b.Edit.stop))
          (stale_edits @ insert)
      in
      ((if combined = [] then st else advance st combined), added)
    end
  in
  Telemetry.Counter.incr imports_added_counter ~by:(List.length imports_added);
  {
    original = source;
    patched = Scanner.state_source st;
    applications;
    imports_added;
    remaining = Scanner.state_findings scanner st;
    rounds_used;
    converged;
  }

let changed r = r.patched <> r.original

(** Detection/patching rules.

    A rule couples a vulnerable implementation pattern (an {!Rx} regex
    derived from the LCS pipeline of §II-A) with the remediation that
    turns the match into its safe alternative, plus the imports the safe
    alternative needs. *)

type severity = Low | Medium | High | Critical

type fix =
  | No_fix
      (** Detection-only: the weakness needs human judgement to repair
          (these rules are why the paper's repair rate trails its
          detection rate). *)
  | Replace_template of string
      (** The matched span is rewritten with an {!Rx.replace} template
          ([$1] etc. refer to the rule pattern's groups). *)
  | Rewrite of Rewrite.t
      (** Computed rewrite for fixes a template cannot express (e.g.
          turning ['%s'] placeholders into parameterized-query [?]s),
          as a declarative {!Rewrite} template so it serializes into
          rule packs. *)

type t = {
  id : string;  (** stable identifier, ["PIT-042"] *)
  title : string;  (** short human summary *)
  cwe : int;  (** primary CWE *)
  severity : severity;
  pattern : Rx.t;  (** the vulnerable pattern *)
  suppress : Rx.t option;
      (** when set and matching the same line, the finding is dropped —
          used to recognize already-safe variants (e.g. [shell=False]). *)
  fix : fix;
  imports : string list;
      (** import statements the fix requires, e.g.
          ["from markupsafe import escape"]. *)
  note : string;  (** remediation advice shown to the user *)
}

val make :
  id:string ->
  title:string ->
  cwe:int ->
  severity:severity ->
  pattern:string ->
  ?suppress:string ->
  ?fix:fix ->
  ?imports:string list ->
  note:string ->
  unit ->
  t
(** Compiles the patterns.  @raise Rx.Parse_error on a malformed
    pattern — rules are static data, so this is a programming error. *)

val owasp : t -> Owasp.category option
(** Category of the rule's primary CWE. *)

val severity_to_string : severity -> string

val fixable : t -> bool
(** Whether the rule carries an automatic fix. *)

(** {1 Binary codec}

    Rule-pack serialization.  Patterns travel fully compiled
    ({!Rx.write_compiled}); the rewrite IR travels rendered and is
    re-parsed — and thereby re-validated — on read. *)

val write : Buffer.t -> t -> unit

val read : Binio.r -> t
(** @raise Binio.Corrupt on structurally invalid input.
    @raise Binio.Truncated if the input ends early. *)

(** JavaScript rule pack: see {!Catalog.javascript}. *)

val rules : unit -> Rule.t list

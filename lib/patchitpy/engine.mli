(** Phase 1: vulnerability detection (static pattern matching).

    Runs every catalog rule over the raw source text.  Because detection
    is lexical, it works on incomplete fragments that AST-based tools
    reject — the property the paper leans on for AI-generated code.

    This module is a thin convenience wrapper over {!Scanner}: the
    85-rule default catalog is compiled into a scan plan once, on first
    use, and shared by every call that does not pass [~rules].  Callers
    that scan many sources with a non-default rule list should
    {!Scanner.compile} once themselves — each [~rules] call here builds
    a fresh plan. *)

type finding = Scanner.finding = {
  rule : Rule.t;
  line : int;  (** 1-based line of the match start *)
  column : int;  (** 0-based column *)
  offset : int;  (** byte offset of the match start *)
  stop : int;  (** byte offset one past the match end *)
  snippet : string;  (** the matched text, single-line-trimmed *)
  m : Rx.m;  (** the underlying match, used by the patcher *)
}

val default_scanner : unit -> Scanner.t
(** The shared scan plan for {!Catalog.all}, compiled on first use.
    Domain-safe: concurrent first calls at worst duplicate the compile.
    When a default provider is registered (see {!set_default_provider})
    it is consulted first — this is how a rule pack named by
    [PATCHITPY_RULE_PACK] replaces source compilation. *)

val set_default_provider : (unit -> Scanner.t option) -> unit
(** Registers an alternative source for {!default_scanner}.  The
    provider runs when the default plan is first needed; returning
    [None] falls back to compiling {!Catalog.all} from source.  Called
    by the rule-pack library's environment hook; has no effect once
    the default plan has been built. *)

val scan : ?rules:Rule.t list -> string -> finding list
(** All findings, sorted by offset then rule id.  A rule's [suppress]
    pattern is evaluated over the matched lines plus one line of context
    on each side; a hit drops the finding (the code is already using the
    safe variant).  A rule that exhausts its backtracking budget on a
    pathological input is skipped; the rest of the catalog still runs. *)

val is_vulnerable : ?rules:Rule.t list -> string -> bool

val scan_selection :
  ?rules:Rule.t list -> string -> first_line:int -> last_line:int -> finding list
(** Scans only the selected line range (1-based, inclusive) — the VS Code
    extension's scan-the-selection command.  Finding positions refer to
    the whole file. *)

val distinct_cwes : finding list -> int list
(** Ascending CWE ids among the findings. *)

val line_of_offset : string -> int -> int
(** 1-based line containing the byte offset.  The underlying
    {!Line_index} is memoized per domain for the most recent source
    (recognized physically), so resolving many offsets against one
    source costs one index build instead of one per call. *)

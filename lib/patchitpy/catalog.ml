(* The catalog compiles lazily: forcing [all] (or [javascript]) is what
   runs [Rule.make] over the per-category rule lists, so a process that
   gets its scanner from a rule pack never pays for source compilation.
   The sanity checks run inside the same force — violations are
   programming errors and surface the first time the catalog is
   actually used (every test forces it). *)

let all_compiled =
  lazy
    (let all =
       Catalog_injection.rules () @ Catalog_crypto.rules ()
       @ Catalog_misconfig.rules () @ Catalog_access.rules ()
       @ Catalog_integrity.rules () @ Catalog_disclosure.rules ()
     in
     (* Catalog sanity: ids unique. *)
     let seen = Hashtbl.create 128 in
     List.iter
       (fun (r : Rule.t) ->
         if Hashtbl.mem seen r.Rule.id then
           invalid_arg (Printf.sprintf "duplicate rule id %s" r.Rule.id);
         Hashtbl.replace seen r.Rule.id ())
       all;
     all)

let all () = Lazy.force all_compiled

let count () = List.length (all ())

let find id = List.find_opt (fun (r : Rule.t) -> r.Rule.id = id) (all ())

let by_owasp cat = List.filter (fun r -> Rule.owasp r = Some cat) (all ())

let by_cwe cwe = List.filter (fun (r : Rule.t) -> r.Rule.cwe = cwe) (all ())

let covered_cwes () =
  List.sort_uniq compare (List.map (fun (r : Rule.t) -> r.Rule.cwe) (all ()))

let fixable_count () = List.length (List.filter Rule.fixable (all ()))

let js_compiled =
  lazy
    (let js = Catalog_js.rules () in
     (* id namespaces must not collide *)
     List.iter
       (fun (r : Rule.t) ->
         if find r.Rule.id <> None then
           invalid_arg (Printf.sprintf "JS rule id %s collides" r.Rule.id))
       js;
     js)

let javascript () = Lazy.force js_compiled

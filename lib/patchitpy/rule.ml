type severity = Low | Medium | High | Critical

type fix =
  | No_fix
  | Replace_template of string
  | Rewrite of Rewrite.t

type t = {
  id : string;
  title : string;
  cwe : int;
  severity : severity;
  pattern : Rx.t;
  suppress : Rx.t option;
  fix : fix;
  imports : string list;
  note : string;
}

let make ~id ~title ~cwe ~severity ~pattern ?suppress ?(fix = No_fix)
    ?(imports = []) ~note () =
  {
    id;
    title;
    cwe;
    severity;
    pattern = Rx.compile pattern;
    suppress = Option.map Rx.compile suppress;
    fix;
    imports;
    note;
  }

let owasp t = Owasp.of_cwe t.cwe

let severity_to_string = function
  | Low -> "LOW"
  | Medium -> "MEDIUM"
  | High -> "HIGH"
  | Critical -> "CRITICAL"

let fixable t = match t.fix with No_fix -> false | Replace_template _ | Rewrite _ -> true

(* --- binary codec ----------------------------------------------------------

   Rule serialization for packs.  Patterns are stored fully compiled
   (see [Rx.write_compiled]); the rewrite IR is stored in its rendered
   form and re-parsed on read, so a malformed program surfaces as
   [Binio.Corrupt] at load time rather than an exception at patch
   time.  The embedded regexes of a rewrite are compiled lazily at
   eval through [Rx.compile]'s memo, exactly as catalog-compiled rules
   do — [Rewrite.validate] runs when a pack is *written*, keeping the
   load path free of source compilation. *)

let w_severity buf s =
  Binio.w_u8 buf
    (match s with Low -> 0 | Medium -> 1 | High -> 2 | Critical -> 3)

let r_severity r =
  match Binio.r_u8 r with
  | 0 -> Low
  | 1 -> Medium
  | 2 -> High
  | 3 -> Critical
  | v -> raise (Binio.Corrupt (Printf.sprintf "bad severity %d" v))

let w_fix buf = function
  | No_fix -> Binio.w_u8 buf 0
  | Replace_template t ->
    Binio.w_u8 buf 1;
    Binio.w_str buf t
  | Rewrite ir ->
    Binio.w_u8 buf 2;
    Binio.w_str buf (Rewrite.render ir)

let r_fix r =
  match Binio.r_u8 r with
  | 0 -> No_fix
  | 1 -> Replace_template (Binio.r_str r)
  | 2 -> (
    match Rewrite.parse (Binio.r_str r) with
    | Ok ir -> Rewrite ir
    | Error msg -> raise (Binio.Corrupt ("bad rewrite program: " ^ msg)))
  | v -> raise (Binio.Corrupt (Printf.sprintf "bad fix tag %d" v))

let write buf t =
  Binio.w_str buf t.id;
  Binio.w_str buf t.title;
  Binio.w_u32 buf t.cwe;
  w_severity buf t.severity;
  Rx.write_compiled buf t.pattern;
  Binio.w_opt (fun buf rx -> Rx.write_compiled buf rx) buf t.suppress;
  w_fix buf t.fix;
  Binio.w_list Binio.w_str buf t.imports;
  Binio.w_str buf t.note

let read r =
  let id = Binio.r_str r in
  let title = Binio.r_str r in
  let cwe = Binio.r_u32 r in
  let severity = r_severity r in
  let pattern = Rx.read_compiled r in
  let suppress = Binio.r_opt Rx.read_compiled r in
  let fix = r_fix r in
  let imports = Binio.r_list Binio.r_str r in
  let note = Binio.r_str r in
  { id; title; cwe; severity; pattern; suppress; fix; imports; note }

type finding = {
  rule : Rule.t;
  line : int;
  column : int;
  offset : int;
  stop : int;
  snippet : string;
  m : Rx.m;
}

type warning = Budget_exhausted of string

type t = {
  rule_arr : Rule.t array;  (* compilation order = reporting tie-break *)
  prefilter : Acsearch.t;  (* one automaton over every rule's literals *)
  owner : int array;  (* automaton pattern index -> rule index *)
  unconditional : int list;  (* rules with no derivable literal *)
  tele : Telemetry.Rules.def;  (* per-rule telemetry registration *)
}

let compile rule_list =
  let rule_arr = Array.of_list rule_list in
  let literals = ref [] and owners = ref [] and unconditional = ref [] in
  Array.iteri
    (fun i (rule : Rule.t) ->
      match Rx.required_literals rule.Rule.pattern with
      | [] -> unconditional := i :: !unconditional
      | lits ->
        List.iter
          (fun lit ->
            literals := lit :: !literals;
            owners := i :: !owners)
          lits)
    rule_arr;
  {
    rule_arr;
    prefilter = Acsearch.build (List.rev !literals);
    owner = Array.of_list (List.rev !owners);
    unconditional = List.rev !unconditional;
    tele =
      Telemetry.Rules.define
        (Array.map (fun (r : Rule.t) -> r.Rule.id) rule_arr);
  }

let telemetry_def t = t.tele

let rules t = Array.to_list t.rule_arr

(* The text window a suppress pattern is evaluated over: the lines the
   match spans, extended by one line on each side. *)
let context_window source start stop =
  let len = String.length source in
  let line_start i =
    let rec back j = if j > 0 && source.[j - 1] <> '\n' then back (j - 1) else j in
    back (min i len)
  in
  let line_end i =
    let rec fwd j = if j < len && source.[j] <> '\n' then fwd (j + 1) else j in
    fwd (max 0 (min i len))
  in
  let w_start = line_start (max 0 (line_start start - 1)) in
  let w_end = line_end (min len (line_end stop + 1)) in
  String.sub source w_start (w_end - w_start)

let one_line s =
  let s = String.trim s in
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i ^ " ..."
  | None -> s

(* Candidate rule set: the unconditional rules plus every rule owning a
   literal the automaton saw — one pass over the source total. *)
let candidates t source =
  let wanted = Array.make (Array.length t.rule_arr) false in
  List.iter (fun i -> wanted.(i) <- true) t.unconditional;
  let hits = Acsearch.search_mask t.prefilter source in
  Array.iteri (fun j hit -> if hit then wanted.(t.owner.(j)) <- true) hits;
  wanted

module B = Telemetry.Rules

let scan_with_warnings t source =
  let wanted = candidates t source in
  let index = lazy (Line_index.build source) in
  (* One branch when telemetry is off; with a sink installed, the block
     is fetched once per scan and every per-rule statistic is a dense
     array store by rule index. *)
  let block =
    match Telemetry.installed () with
    | None -> None
    | Some sink ->
      let b = B.block sink t.tele in
      b.B.scans <- b.B.scans + 1;
      Some b
  in
  let findings = ref [] and warnings = ref [] in
  (* Chained timestamps: one clock read per candidate rule — each rule's
     end time is the next one's start, since nothing happens between
     candidate rules. *)
  let t_prev =
    ref (match block with Some _ -> Telemetry.now_ns () | None -> 0L)
  in
  Array.iteri
    (fun i (rule : Rule.t) ->
      if wanted.(i) then begin
        let steps = ref 0 in
        let exhausted = ref false in
        (* A pathological input must never take the scanner down: a rule
           that exhausts its backtracking budget is skipped, the rest of
           the plan still runs — but the skip is no longer silent: it is
           reported as a warning and counted in telemetry. *)
        let matches =
          try
            match block with
            | None -> Rx.find_all rule.Rule.pattern source
            | Some _ -> Rx.find_all_counted rule.Rule.pattern source ~steps
          with Rx.Budget_exceeded _ ->
            exhausted := true;
            []
        in
        let raw = ref 0 and dropped = ref 0 and reported = ref 0 in
        List.iter
          (fun m ->
            incr raw;
            let offset = Rx.m_start m and stop = Rx.m_stop m in
            let suppressed =
              match rule.Rule.suppress with
              | None -> false
              | Some sup -> Rx.matches sup (context_window source offset stop)
            in
            if suppressed then incr dropped
            else begin
              incr reported;
              let index = Lazy.force index in
              findings :=
                {
                  rule;
                  line = Line_index.line index offset;
                  column = Line_index.column index offset;
                  offset;
                  stop;
                  snippet = one_line (Rx.matched m);
                  m;
                }
                :: !findings
            end)
          matches;
        if !exhausted then warnings := Budget_exhausted rule.Rule.id :: !warnings;
        match block with
        | None -> ()
        | Some b ->
          b.B.candidates.(i) <- b.B.candidates.(i) + 1;
          b.B.matched.(i) <- b.B.matched.(i) + !raw;
          b.B.suppressed.(i) <- b.B.suppressed.(i) + !dropped;
          b.B.findings.(i) <- b.B.findings.(i) + !reported;
          b.B.steps.(i) <- b.B.steps.(i) + !steps;
          if !exhausted then
            b.B.budget_exhausted.(i) <- b.B.budget_exhausted.(i) + 1;
          let t = Telemetry.now_ns () in
          b.B.time_ns.(i) <-
            b.B.time_ns.(i) + Int64.to_int (Int64.sub t !t_prev);
          t_prev := t
      end)
    t.rule_arr;
  ( List.sort
      (fun a b ->
        match compare a.offset b.offset with
        | 0 -> compare a.rule.Rule.id b.rule.Rule.id
        | c -> c)
      !findings,
    List.rev !warnings )

let scan t source = fst (scan_with_warnings t source)

let is_vulnerable t source = scan t source <> []

let scan_selection_with_warnings t source ~first_line ~last_line =
  let lines = String.split_on_char '\n' source in
  let selected =
    List.filteri (fun i _ -> i + 1 >= first_line && i + 1 <= last_line) lines
    |> String.concat "\n"
  in
  let findings, warnings = scan_with_warnings t selected in
  ( List.map
      (fun f ->
        let line = f.line + first_line - 1 in
        { f with line })
      findings,
    warnings )

let scan_selection t source ~first_line ~last_line =
  fst (scan_selection_with_warnings t source ~first_line ~last_line)

type finding = {
  rule : Rule.t;
  line : int;
  column : int;
  offset : int;
  stop : int;
  snippet : string;
  m : Rx.m;
}

type warning = Budget_exhausted of string

type rule_meta = { literals : string list; extent : (int * int) option }

let derive_meta (rule : Rule.t) =
  {
    literals = Rx.required_literals rule.Rule.pattern;
    extent = Rx.newline_budget rule.Rule.pattern;
  }

(* A rule slot.  Compile-built plans hold their rules directly;
   pack-loaded plans hold a decode thunk and materialize a rule the
   first time a scan needs it — [candidates] prunes most rules for any
   one source, so a short-lived process decodes only the rules it
   actually runs, and pack cold start stays free of the per-rule decode
   cost.  The slot is an [Atomic] rather than a [lazy] because one plan
   is shared across serve worker domains (concurrent forcing of a lazy
   is unsafe): concurrent first uses at worst decode twice, and
   whichever value wins the CAS is served from then on. *)
type cell = { filled : Rule.t option Atomic.t; decode : unit -> Rule.t }

let cell_of_rule rule =
  { filled = Atomic.make (Some rule); decode = (fun () -> rule) }

let cell_rule cell =
  match Atomic.get cell.filled with
  | Some rule -> rule
  | None ->
    let rule = cell.decode () in
    if Atomic.compare_and_set cell.filled None (Some rule) then rule
    else (
      match Atomic.get cell.filled with Some winner -> winner | None -> rule)

(* The fused-tier slot of a plan.  Like rule [cell]s it defers the
   expensive step — fusing the whole catalog into one tagged DFA — to
   first use, because plans are compiled (and packs loaded) in
   processes that may never scan; and like them it is an [Atomic]
   because serve workers share one plan across domains.  [F_off] pins
   the plan to the per-rule path and is never overwritten — it is how
   [PATCHITPY_SCAN_TIER=per-rule] and the differential tests' reference
   plans stay fused-free even when a pack tries to install a thunk. *)
type fused_tier =
  | F_off  (* per-rule path forced; never upgraded *)
  | F_pending of (unit -> Rx.fused option)  (* fuse on first scan *)
  | F_ready of Rx.fused
  | F_none  (* fusing ran and hosted nothing *)

type t = {
  rule_arr : cell array;  (* compilation order = reporting tie-break *)
  prefilter : Acsearch.t;  (* one automaton over every rule's literals *)
  owner : int array;  (* automaton pattern index -> rule index *)
  unconditional : int list;  (* rules with no derivable literal *)
  has_literals : bool array;
  extent : (int * int) option array;  (* Rx.newline_budget per rule *)
  tele : Telemetry.Rules.def;  (* per-rule telemetry registration *)
  fused : fused_tier Atomic.t;
}

(* The scan-tier escape hatch, mirroring [PATCHITPY_RX_TIER]: checked
   when a plan is built, so it governs plans compiled or loaded
   afterwards.  [PATCHITPY_RX_TIER=backtrack] also lands here — with
   every pattern pinned to the backtracker nothing is hostable, so
   fusing could only waste a compile. *)
let scan_tier_forced () =
  (match Sys.getenv_opt "PATCHITPY_SCAN_TIER" with
  | Some "per-rule" -> true
  | Some _ | None -> false)
  ||
  match Sys.getenv_opt "PATCHITPY_RX_TIER" with
  | Some "backtrack" -> true
  | Some _ | None -> false

let fused_of_cells rule_arr =
  if scan_tier_forced () then Atomic.make F_off
  else
    Atomic.make
      (F_pending
         (fun () ->
           Rx.Fused.compile
             (Array.map (fun c -> (cell_rule c).Rule.pattern) rule_arr)))

(* Plan compilation is the expensive setup step callers are expected to
   amortize (one plan across a batch, or one per daemon).  The counter
   lets a test assert the amortization actually happens. *)
let compiles_counter = Telemetry.Counter.make "scanner_compiles_total"

let compile ?meta rule_list =
  Telemetry.Counter.incr compiles_counter;
  let rules_vec = Array.of_list rule_list in
  let rule_arr = Array.map cell_of_rule rules_vec in
  let metas =
    match meta with
    | None -> Array.map derive_meta rules_vec
    | Some ms ->
      let arr = Array.of_list ms in
      if Array.length arr <> Array.length rules_vec then
        invalid_arg "Scanner.compile: meta list does not match the rules";
      arr
  in
  let literals = ref [] and owners = ref [] and unconditional = ref [] in
  let has_literals = Array.make (Array.length rules_vec) false in
  Array.iteri
    (fun i m ->
      match m.literals with
      | [] -> unconditional := i :: !unconditional
      | lits ->
        has_literals.(i) <- true;
        List.iter
          (fun lit ->
            literals := lit :: !literals;
            owners := i :: !owners)
          lits)
    metas;
  {
    rule_arr;
    prefilter = Acsearch.build (List.rev !literals);
    owner = Array.of_list (List.rev !owners);
    unconditional = List.rev !unconditional;
    has_literals;
    extent = Array.map (fun (m : rule_meta) -> m.extent) metas;
    tele =
      Telemetry.Rules.define
        (Array.map (fun (r : Rule.t) -> r.Rule.id) rules_vec);
    fused = fused_of_cells rule_arr;
  }

let telemetry_def t = t.tele

let rules t = List.map cell_rule (Array.to_list t.rule_arr)
let rule_count t = Array.length t.rule_arr

(* Forces the fused tier.  Concurrent first scans may both fuse; the
   CAS winner is served from then on (same discipline as rule cells). *)
let rec fused_machine t =
  match Atomic.get t.fused with
  | F_off | F_none -> None
  | F_ready f -> Some f
  | F_pending thunk as prev ->
    let next =
      match thunk () with Some f -> F_ready f | None -> F_none
    in
    if Atomic.compare_and_set t.fused prev next then
      match next with F_ready f -> Some f | _ -> None
    else fused_machine t

let set_fused_thunk t thunk =
  match Atomic.get t.fused with
  | F_off -> ()  (* the tier is pinned off; nothing may turn it on *)
  | F_pending _ | F_ready _ | F_none -> Atomic.set t.fused (F_pending thunk)

let per_rule_tier t = { t with fused = Atomic.make F_off }

(* The text window a suppress pattern is evaluated over: the lines the
   match spans, extended by one line on each side. *)
let context_window source start stop =
  let len = String.length source in
  let line_start i =
    let rec back j = if j > 0 && source.[j - 1] <> '\n' then back (j - 1) else j in
    back (min i len)
  in
  let line_end i =
    let rec fwd j = if j < len && source.[j] <> '\n' then fwd (j + 1) else j in
    fwd (max 0 (min i len))
  in
  let w_start = line_start (max 0 (line_start start - 1)) in
  let w_end = line_end (min len (line_end stop + 1)) in
  String.sub source w_start (w_end - w_start)

let one_line s =
  let s = String.trim s in
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i ^ " ..."
  | None -> s

(* Candidate rule set: the unconditional rules plus every rule owning a
   literal the automaton saw — one pass over the source total. *)
let candidates t source =
  let wanted = Array.make (Array.length t.rule_arr) false in
  List.iter (fun i -> wanted.(i) <- true) t.unconditional;
  let hits = Acsearch.search_mask t.prefilter source in
  Array.iteri (fun j hit -> if hit then wanted.(t.owner.(j)) <- true) hits;
  wanted

module B = Telemetry.Rules

(* --- fused-tier dispatch ---------------------------------------------- *)

(* [candidates]' literal gate says "a required literal occurs"; the
   fused pass sharpens that to "the full pattern matches somewhere" in
   one more traversal of the source.  Counters: [candidates] counts
   rules the fused pass flagged, [confirms] counts the per-rule sweeps
   those flags triggered (the gap between the two is rules flagged but
   already excluded by the literal gate), [fallbacks] counts subjects
   where the fused cache thrashed and the scan reverted to per-rule. *)
let fused_candidates_counter =
  Telemetry.Counter.make "scanner_fused_candidates_total"

let fused_confirms_counter =
  Telemetry.Counter.make "scanner_fused_confirms_total"

let fused_fallbacks_counter =
  Telemetry.Counter.make "scanner_fused_fallbacks_total"

(* One fused pass over [source], or [None] when the tier is off, hosts
   nothing, or bailed on this subject (cache thrash).  Never affects
   results — [None] simply means "sweep every candidate per-rule". *)
let fused_mask t source =
  match fused_machine t with
  | None -> None
  | Some f -> (
    match Rx.Fused.run f source with
    | mask ->
      if Telemetry.enabled () then begin
        let flagged = ref 0 in
        Bytes.iter (fun c -> if c <> '\000' then incr flagged) mask;
        if !flagged > 0 then
          Telemetry.Counter.incr fused_candidates_counter ~by:!flagged
      end;
      Some (f, mask)
    | exception Rx.Fused.Bail ->
      Telemetry.Counter.incr fused_fallbacks_counter;
      None)

(* Whether rule [i] still needs its per-rule sweep given the fused
   verdict: unhosted rules always do; hosted rules only when flagged
   (an unflagged hosted rule provably has no match — skipping its
   sweep cannot change results). *)
let fused_wants fmask i =
  match fmask with
  | None -> true
  | Some (f, mask) ->
    (not (Rx.Fused.is_hosted f i)) || Bytes.get mask i <> '\000'

(* --- scan states ------------------------------------------------------ *)

(* A raw match: one [Rx.find_all] result with its suppression verdict.
   [raw_start]/[raw_stop] are offsets in the state's source; after a
   carried re-scan they may differ from [raw_m]'s own offsets, which
   refer to the source the match was originally found in — the matched
   and captured text is byte-identical in both, which is all the patcher
   reads from [raw_m]. *)
type raw = {
  raw_start : int;
  raw_stop : int;
  raw_suppressed : bool;
  raw_m : Rx.m;
}

type state = {
  st_source : string;
  st_index : Line_index.t Lazy.t;
  st_raw : raw list array;  (* per rule, ascending by raw_start *)
  st_maxws : int Lazy.t;
      (* upper bound on the newlines inside any maximal whitespace run
         of [st_source]; monotone over re-scans (see [rescan]) *)
  st_warnings : warning list;
}

let state_source st = st.st_source
let state_warnings st = st.st_warnings

let is_ws = function
  | ' ' | '\t' | '\n' | '\r' | '\011' | '\012' -> true
  | _ -> false

let max_ws_run_newlines source ~pos ~stop =
  let best = ref 0 and cur = ref 0 in
  for i = pos to stop - 1 do
    let c = String.unsafe_get source i in
    if c = '\n' then begin
      incr cur;
      if !cur > !best then best := !cur
    end
    else if not (is_ws c) then cur := 0
  done;
  !best

(* The full scan, producing a [state].  Semantics are the seed engine's:
   suppress windows are the matched lines ±1, a rule that exhausts its
   backtracking budget is skipped with a warning, and per-rule telemetry
   is recorded when a sink is installed. *)
let scan_state t source =
  Telemetry.Trace.ambient_span Telemetry.Trace.Scan @@ fun () ->
  let fmask = fused_mask t source in
  (* When the fused machine hosts every rule its mask is strictly
     sharper than the literal gate (a matching rule's required literal
     necessarily occurs, so flagged ⊆ literal-wanted): the automaton
     pass would change nothing and is skipped.  Any unhosted rule —
     or a bailed/disabled fused pass — brings the literal gate back. *)
  let wanted =
    match fmask with
    | Some (f, _) when Rx.Fused.hosted_count f = Array.length t.rule_arr ->
      None
    | _ -> Some (candidates t source)
  in
  let confirms = ref 0 in
  let nrules = Array.length t.rule_arr in
  let raws = Array.make nrules [] in
  (* One branch when telemetry is off; with a sink installed, the block
     is fetched once per scan and every per-rule statistic is a dense
     array store by rule index. *)
  let block =
    match Telemetry.installed () with
    | None -> None
    | Some sink ->
      let b = B.block sink t.tele in
      b.B.scans <- b.B.scans + 1;
      Some b
  in
  let warnings = ref [] in
  (* Chained timestamps: one clock read per candidate rule — each rule's
     end time is the next one's start, since nothing happens between
     candidate rules.  Raw ticks, not ns: the block is reported through
     [Telemetry.Report], which converts at collection time, and a tick
     read is several times cheaper than the monotonic clock. *)
  let t_prev =
    ref (match block with Some _ -> Telemetry.now_ticks () | None -> 0)
  in
  Array.iteri
    (fun i cell ->
      if (match wanted with None -> true | Some w -> w.(i))
         && fused_wants fmask i
      then begin
        (match fmask with
        | Some (f, _) when Rx.Fused.is_hosted f i -> incr confirms
        | _ -> ());
        let rule = cell_rule cell in
        let steps = ref 0 in
        let exhausted = ref false in
        (* A pathological input must never take the scanner down: a rule
           that exhausts its backtracking budget is skipped, the rest of
           the plan still runs — but the skip is not silent: it is
           reported as a warning and counted in telemetry. *)
        let matches =
          try
            match block with
            | None -> Rx.find_all rule.Rule.pattern source
            | Some _ -> Rx.find_all_counted rule.Rule.pattern source ~steps
          with Rx.Budget_exceeded _ ->
            exhausted := true;
            []
        in
        let nraw = ref 0 and dropped = ref 0 in
        let rule_raws =
          List.map
            (fun m ->
              incr nraw;
              let start = Rx.m_start m and stop = Rx.m_stop m in
              let suppressed =
                match rule.Rule.suppress with
                | None -> false
                | Some sup ->
                  Rx.matches sup (context_window source start stop)
              in
              if suppressed then incr dropped;
              { raw_start = start; raw_stop = stop; raw_suppressed = suppressed;
                raw_m = m })
            matches
        in
        raws.(i) <- rule_raws;
        if !exhausted then warnings := Budget_exhausted rule.Rule.id :: !warnings;
        match block with
        | None -> ()
        | Some b ->
          b.B.candidates.(i) <- b.B.candidates.(i) + 1;
          b.B.matched.(i) <- b.B.matched.(i) + !nraw;
          b.B.suppressed.(i) <- b.B.suppressed.(i) + !dropped;
          b.B.findings.(i) <- b.B.findings.(i) + (!nraw - !dropped);
          b.B.steps.(i) <- b.B.steps.(i) + !steps;
          if !exhausted then
            b.B.budget_exhausted.(i) <- b.B.budget_exhausted.(i) + 1;
          let t = Telemetry.now_ticks () in
          b.B.time_ns.(i) <- b.B.time_ns.(i) + (t - !t_prev);
          t_prev := t
      end)
    t.rule_arr;
  if !confirms > 0 then
    Telemetry.Counter.incr fused_confirms_counter ~by:!confirms;
  {
    st_source = source;
    st_index = lazy (Line_index.build source);
    st_raw = raws;
    st_maxws =
      lazy (max_ws_run_newlines source ~pos:0 ~stop:(String.length source));
    st_warnings = List.rev !warnings;
  }

let state_findings t st =
  let out = ref [] in
  Array.iteri
    (fun i rule_raws ->
      (* empty for almost every rule — and only a rule that actually
         has raw matches forces its cell's decode *)
      if rule_raws <> [] then begin
        let rule = cell_rule t.rule_arr.(i) in
        List.iter
          (fun r ->
            if not r.raw_suppressed then begin
              let index = Lazy.force st.st_index in
              out :=
                {
                  rule;
                  line = Line_index.line index r.raw_start;
                  column = Line_index.column index r.raw_start;
                  offset = r.raw_start;
                  stop = r.raw_stop;
                  snippet = one_line (Rx.matched r.raw_m);
                  m = r.raw_m;
                }
                :: !out
            end)
          rule_raws
      end)
    st.st_raw;
  List.sort
    (fun a b ->
      match compare a.offset b.offset with
      | 0 -> compare a.rule.Rule.id b.rule.Rule.id
      | c -> c)
    !out

let scan_with_warnings t source =
  let st = scan_state t source in
  (state_findings t st, st.st_warnings)

let scan t source = fst (scan_with_warnings t source)

let is_vulnerable t source = scan t source <> []

let scan_selection_with_warnings t source ~first_line ~last_line =
  let lines = String.split_on_char '\n' source in
  let selected =
    List.filteri (fun i _ -> i + 1 >= first_line && i + 1 <= last_line) lines
    |> String.concat "\n"
  in
  let findings, warnings = scan_with_warnings t selected in
  ( List.map
      (fun f ->
        let line = f.line + first_line - 1 in
        { f with line })
      findings,
    warnings )

let scan_selection t source ~first_line ~last_line =
  fst (scan_selection_with_warnings t source ~first_line ~last_line)

(* --- incremental re-scan ---------------------------------------------- *)

(* Telemetry for the incremental pipeline: how often re-scans run (and
   fall back to a full scan), how much of each finding set is carried
   over versus recomputed, and what fraction of the new source the dirty
   regions cover. *)
let rescan_counter = Telemetry.Counter.make "scanner_rescans_total"

let rescan_fallback_counter =
  Telemetry.Counter.make "scanner_rescan_full_fallbacks_total"

let reused_counter = Telemetry.Counter.make "scanner_findings_reused_total"

let recomputed_counter =
  Telemetry.Counter.make "scanner_findings_recomputed_total"

let dirty_pct_histogram = Telemetry.Histogram.make "scanner_dirty_region_pct"

(* Raised when exactness cannot be maintained regionally (a budget
   exhaustion mid-re-scan, or a defensive invariant check failing);
   [rescan] then falls back to a full [scan_state], which is exact by
   construction. *)
exception Fallback

(* A dirty region: the lines an edit touched, widened by the plan's line
   extent bound plus two.  [rg_old_*] are offsets in the pre-edit
   source, [rg_new_*] in the post-edit source (both line-aligned), and
   [rg_fence] is the last new-source offset a region re-scan may start a
   match attempt at: one bound past the region, so that any match found
   beyond it is provably the old scan's exact continuation (see
   DESIGN.md, "Incremental patch architecture"). *)
type region = {
  rg_old_start : int;
  rg_old_stop : int;
  rg_new_start : int;
  rg_new_stop : int;
  rg_fence : int;
}

(* New-source spans of the replacement texts, in ascending order. *)
let new_spans edits =
  let rec go shift acc = function
    | [] -> List.rev acc
    | (e : Edit.t) :: rest ->
      let s = e.Edit.start + shift in
      go (shift + Edit.delta e) ((s, s + String.length e.Edit.repl) :: acc) rest
  in
  go 0 [] edits

(* The maxws bound for the edited source: whitespace runs in clean text
   existed before the edits and are covered by the previous bound; runs
   touching a replacement are re-measured after extending the span to
   its enclosing run.  The result can over-approximate (the previous
   bound is kept even if its run shrank), which only ever widens
   regions — never a correctness risk. *)
let maxws_after new_source spans prev_bound =
  let len = String.length new_source in
  List.fold_left
    (fun acc (s, e) ->
      let s = ref (min s len) in
      while !s > 0 && is_ws new_source.[!s - 1] do
        decr s
      done;
      let e = ref (min e len) in
      while !e < len && is_ws new_source.[!e] do
        incr e
      done;
      max acc (max_ws_run_newlines new_source ~pos:!s ~stop:!e))
    prev_bound spans

(* Sorted 1-based inclusive line ranges, overlapping or adjacent ones
   merged. *)
let merge_ranges ranges =
  List.fold_left
    (fun acc (a, b) ->
      match acc with
      | (pa, pb) :: rest when a <= pb + 1 -> (pa, max pb b) :: rest
      | _ -> (a, b) :: acc)
    []
    (List.sort compare ranges)
  |> List.rev

(* Line distance from [l] to the nearest range (0 inside a range). *)
let dist_to_ranges ranges l =
  List.fold_left
    (fun acc (a, b) ->
      min acc (if l < a then a - l else if l > b then l - b else 0))
    max_int ranges

(* One rule's dirty regions: the base dirty line ranges widened by the
   rule's own [pad], with fences [bound] lines past each region end.
   Regions are per rule because pads differ widely across the catalog —
   a worst-case shared pad would mark most of a small file dirty for
   every rule. *)
let regions_for ~old_index ~old_len ~new_index ~new_source ~edits ~base_old
    ~pad ~bound =
  let nlines_old = Line_index.line_count old_index in
  let new_len = String.length new_source in
  let nlines_new = Line_index.line_count new_index in
  merge_ranges
    (List.map
       (fun (a, b) -> (max 1 (a - pad), min nlines_old (b + pad)))
       base_old)
  |> List.map (fun (la, lb) ->
         let os = Line_index.line_start old_index la in
         let oe =
           if lb >= nlines_old then old_len
           else Line_index.line_start old_index (lb + 1)
         in
         let ns = Edit.map_offset_left edits os in
         let ne = Edit.map_offset edits oe in
         let fence_line =
           Line_index.line new_index (max 0 (ne - 1)) + bound + 1
         in
         let fence =
           if fence_line >= nlines_new then new_len
           else Line_index.line_start new_index (fence_line + 1) - 1
         in
         {
           rg_old_start = os;
           rg_old_stop = oe;
           rg_new_start = ns;
           rg_new_stop = ne;
           rg_fence = fence;
         })
  |> Array.of_list

(* Exact per-rule merge of the old raw matches with region re-scans.
   Invariants (proved in DESIGN.md):
   - old matches starting before a region are unchanged, byte-for-byte,
     suppression window included — they are carried with remapped
     offsets;
   - matches relevant to the edits start inside a region; the re-scan
     runs [Rx.exec] from the region start, fenced at [rg_fence];
   - when the fenced scan finds nothing further, the remaining old
     matches (all strictly beyond the fence) are the scan's exact
     continuation, so carrying resumes. *)
let merge_rule (rule : Rule.t) old_raws edits new_source regions ~steps ~count
    =
  let nregions = Array.length regions in
  let exec_from pos limit =
    if count then Rx.exec_counted ~pos ~limit rule.Rule.pattern new_source ~steps
    else Rx.exec ~pos ~limit rule.Rule.pattern new_source
  in
  let map_o = Edit.map_offset edits in
  let out = ref [] in
  let fresh = ref 0 and carried = ref 0 in
  let olds = ref old_raws in
  let pos = ref 0 in
  let k = ref 0 in
  let carrying = ref true in
  let finished = ref false in
  let emit_carried r =
    let start = map_o r.raw_start and stop = map_o r.raw_stop in
    incr carried;
    out := { r with raw_start = start; raw_stop = stop } :: !out;
    pos := (if stop = start then stop + 1 else stop)
  in
  let emit_fresh m =
    let start = Rx.m_start m and stop = Rx.m_stop m in
    let suppressed =
      match rule.Rule.suppress with
      | None -> false
      | Some sup -> Rx.matches sup (context_window new_source start stop)
    in
    incr fresh;
    out :=
      { raw_start = start; raw_stop = stop; raw_suppressed = suppressed;
        raw_m = m }
      :: !out;
    pos := (if stop = start then stop + 1 else stop)
  in
  let rec drop_while p =
    match !olds with
    | r :: rest when p r ->
      olds := rest;
      drop_while p
    | _ -> ()
  in
  while not !finished do
    if !carrying then
      if !k >= nregions then begin
        List.iter emit_carried !olds;
        olds := [];
        finished := true
      end
      else begin
        let rg = regions.(!k) in
        (* carry the clean matches before the region, drop the ones the
           region re-scan will recompute *)
        let rec carry () =
          match !olds with
          | r :: rest when r.raw_start < rg.rg_old_start ->
            olds := rest;
            emit_carried r;
            carry ()
          | _ -> ()
        in
        carry ();
        drop_while (fun r -> r.raw_start < rg.rg_old_stop);
        pos := max !pos rg.rg_new_start;
        carrying := false
      end
    else begin
      (* a fence reaching into the next region fuses the two scans *)
      let fused = ref true in
      while !fused do
        if
          !k + 1 < nregions
          && regions.(!k).rg_fence >= regions.(!k + 1).rg_new_start
        then begin
          incr k;
          drop_while (fun r -> r.raw_start < regions.(!k).rg_old_stop)
        end
        else fused := false
      done;
      let fence = regions.(!k).rg_fence in
      match exec_from !pos fence with
      | Some m ->
        emit_fresh m;
        (* old matches the scan has passed are superseded: either they
           were just re-found (and re-emitted fresh) or they vanished *)
        drop_while (fun r -> map_o r.raw_start < !pos)
      | None ->
        (* no match starts in [pos, fence].  An old match mapping into
           that window would be a positional match on clean text — a
           contradiction; check defensively and fall back rather than
           ever diverging from the full scan. *)
        (match !olds with
        | r :: _ when map_o r.raw_start <= fence -> raise Fallback
        | _ -> ());
        incr k;
        carrying := true
    end
  done;
  (List.rev !out, !carried, !fresh)

let rescan_exn t st edits new_source =
  let old_index = Lazy.force st.st_index in
  let old_len = String.length st.st_source in
  let new_index = Line_index.update old_index edits in
  let maxws = maxws_after new_source (new_spans edits) (Lazy.force st.st_maxws) in
  let nrules = Array.length t.rule_arr in
  (* Per-rule line-extent bounds under the new maxws: a match of rule
     [i] spans at most [bound.(i)] newlines. *)
  let bound =
    Array.map
      (function Some (f, w) -> f + (w * maxws) | None -> 0)
      t.extent
  in
  let max_bound = Array.fold_left max 0 bound in
  let max_pad = max_bound + 2 in
  (* Base dirty line ranges: the lines the edits touched, in old-source
     and new-source coordinates.  Each rule widens these by its own pad
     instead of sharing the worst rule's. *)
  let base_old =
    merge_ranges
      (List.map
         (fun (e : Edit.t) ->
           ( Line_index.line old_index e.Edit.start,
             Line_index.line old_index (max e.Edit.start (e.Edit.stop - 1)) ))
         edits)
  in
  let new_len = String.length new_source in
  let nlines_new = Line_index.line_count new_index in
  let base_new =
    merge_ranges
      (List.map
         (fun (s, e) ->
           ( Line_index.line new_index s,
             Line_index.line new_index (max s (e - 1)) ))
         (new_spans edits))
  in
  (* Literal-distance prefilter.  One Aho–Corasick pass over the dirty
     lines widened by [p] records, per rule, how many lines its nearest
     literal hit sits from a dirty line.  [p] covers the worst rule's
     decision threshold (pad + bound + 1 below), so a hit outside the
     scanned span is provably irrelevant to every rule — including
     literals straddling a span start, which a root-start scan cannot
     see but which then lie > p lines out. *)
  let min_lit_dist = Array.make nrules max_int in
  let p = max_pad + max_bound + 1 in
  let scan_spans =
    merge_ranges
      (List.map
         (fun (a, b) -> (max 1 (a - p), min nlines_new (b + p)))
         base_new)
    |> List.map (fun (la, lb) ->
           let bs = Line_index.line_start new_index la in
           let be =
             if lb >= nlines_new then new_len
             else Line_index.line_start new_index (lb + 1)
           in
           (bs, be))
  in
  List.iter
    (fun (bs, be) ->
      if be > bs then
        Acsearch.search_hits_into t.prefilter new_source ~pos:bs ~stop:be
          (fun j i ->
            let r = t.owner.(j) in
            if min_lit_dist.(r) > 0 then begin
              let d = dist_to_ranges base_new (Line_index.line new_index i) in
              if d < min_lit_dist.(r) then min_lit_dist.(r) <- d
            end))
    scan_spans;
  (* Distance from each rule's nearest old match to a dirty line: a
     close old match may vanish or change, and its disappearance can
     un-shadow a match further out, so closeness forces the full
     region merge for that rule. *)
  let min_old_dist = Array.make nrules max_int in
  Array.iteri
    (fun i olds ->
      List.iter
        (fun r ->
          if min_old_dist.(i) > 0 then begin
            let d =
              dist_to_ranges base_old (Line_index.line old_index r.raw_start)
            in
            if d < min_old_dist.(i) then min_old_dist.(i) <- d
          end)
        olds)
    st.st_raw;
  (* Rules with no finite line extent are re-run over the whole source
     when they could match at all; their candidacy needs the full-source
     prefilter, computed at most once. *)
  let full_wanted =
    lazy
      (let w = Array.make nrules false in
       List.iter (fun i -> w.(i) <- true) t.unconditional;
       let hits = Acsearch.search_mask t.prefilter new_source in
       Array.iteri (fun j hit -> if hit then w.(t.owner.(j)) <- true) hits;
       (* the fused pass sharpens the literal gate into an exact
          existence gate for hosted rules: an unflagged hosted rule's
          full re-scan would find nothing, so it is skipped outright *)
       (match fused_mask t new_source with
       | None -> ()
       | Some (f, mask) ->
         for i = 0 to nrules - 1 do
           if w.(i) && Rx.Fused.is_hosted f i && Bytes.get mask i = '\000'
           then w.(i) <- false
         done);
       w)
  in
  let block =
    match Telemetry.installed () with
    | None -> None
    | Some sink ->
      let b = B.block sink t.tele in
      b.B.scans <- b.B.scans + 1;
      Some b
  in
  let count = block <> None in
  let t_prev = ref (if count then Telemetry.now_ticks () else 0) in
  let new_raws = Array.make nrules [] in
  let total_carried = ref 0 and total_fresh = ref 0 in
  let record i nraw dropped steps =
    match block with
    | None -> ()
    | Some b ->
      b.B.candidates.(i) <- b.B.candidates.(i) + 1;
      b.B.matched.(i) <- b.B.matched.(i) + nraw;
      b.B.suppressed.(i) <- b.B.suppressed.(i) + dropped;
      b.B.findings.(i) <- b.B.findings.(i) + (nraw - dropped);
      b.B.steps.(i) <- b.B.steps.(i) + steps;
      let now = Telemetry.now_ticks () in
      b.B.time_ns.(i) <- b.B.time_ns.(i) + (now - !t_prev);
      t_prev := now
  in
  Array.iteri
    (fun i cell ->
      let olds = st.st_raw.(i) in
      match t.extent.(i) with
      | Some _ ->
        let pad = bound.(i) + 2 in
        (* The rule must re-scan its regions iff a new match could start
           near a dirty line (its literal sits within pad + bound + 1
           lines — the extra bound + 1 covers a match whose start is up
           to bound lines before its literal, plus the fence line) or an
           old match sits within pad lines (it may vanish, and a
           vanished match can un-shadow one starting up to bound lines
           past the region, which the fence covers — so this case always
           runs the full merge, never a drop-only shortcut). *)
        let needs_merge =
          (not t.has_literals.(i))
          || min_lit_dist.(i) <= pad + bound.(i) + 1
          || min_old_dist.(i) <= pad
        in
        if not needs_merge then begin
          (* nothing near the dirty lines changed for this rule:
             carry all matches with remapped offsets *)
          if olds <> [] then begin
            let map_o = Edit.map_offset edits in
            new_raws.(i) <-
              List.map
                (fun r ->
                  { r with
                    raw_start = map_o r.raw_start;
                    raw_stop = map_o r.raw_stop })
                olds;
            total_carried := !total_carried + List.length olds
          end
        end
        else begin
          let regions =
            regions_for ~old_index ~old_len ~new_index ~new_source ~edits
              ~base_old ~pad ~bound:bound.(i)
          in
          let rule = cell_rule cell in
          let steps = ref 0 in
          let merged, carried, fresh =
            try merge_rule rule olds edits new_source regions ~steps ~count
            with Rx.Budget_exceeded _ -> raise Fallback
          in
          new_raws.(i) <- merged;
          total_carried := !total_carried + carried;
          total_fresh := !total_fresh + fresh;
          let dropped =
            List.fold_left
              (fun acc r -> if r.raw_suppressed then acc + 1 else acc)
              0 merged
          in
          record i fresh dropped !steps
        end
      | None ->
        (* no finite extent: full re-scan whenever the rule is a
           candidate anywhere in the new source *)
        if (Lazy.force full_wanted).(i) then begin
          let rule = cell_rule cell in
          let steps = ref 0 in
          let matches =
            try
              if count then
                Rx.find_all_counted rule.Rule.pattern new_source ~steps
              else Rx.find_all rule.Rule.pattern new_source
            with Rx.Budget_exceeded _ -> raise Fallback
          in
          let nraw = ref 0 and dropped = ref 0 in
          new_raws.(i) <-
            List.map
              (fun m ->
                incr nraw;
                let start = Rx.m_start m and stop = Rx.m_stop m in
                let suppressed =
                  match rule.Rule.suppress with
                  | None -> false
                  | Some sup ->
                    Rx.matches sup (context_window new_source start stop)
                in
                if suppressed then incr dropped;
                { raw_start = start; raw_stop = stop;
                  raw_suppressed = suppressed; raw_m = m })
              matches;
          total_fresh := !total_fresh + !nraw;
          record i !nraw !dropped !steps
        end)
    t.rule_arr;
  Telemetry.Counter.incr reused_counter ~by:!total_carried;
  Telemetry.Counter.incr recomputed_counter ~by:!total_fresh;
  if new_len > 0 then begin
    let dirty =
      List.fold_left (fun acc (bs, be) -> acc + (be - bs)) 0 scan_spans
    in
    Telemetry.Histogram.observe dirty_pct_histogram
      (min 100 (dirty * 100 / new_len))
  end;
  {
    st_source = new_source;
    st_index = Lazy.from_val new_index;
    st_raw = new_raws;
    st_maxws = Lazy.from_val maxws;
    st_warnings = [];
  }

let rescan t st edits =
  if edits = [] then st
  else begin
    let new_source = Edit.apply st.st_source edits in
    (* A state carrying budget warnings has rules whose match set is not
       exactly known; only the full scan reproduces the reference
       behaviour for those. *)
    if st.st_warnings <> [] then scan_state t new_source
    else begin
      Telemetry.Counter.incr rescan_counter;
      match
        Telemetry.Trace.ambient_span Telemetry.Trace.Rescan (fun () ->
            rescan_exn t st edits new_source)
      with
      | state -> state
      | exception Fallback ->
        Telemetry.Counter.incr rescan_fallback_counter;
        scan_state t new_source
    end
  end

(* --- binary codec ----------------------------------------------------------

   Plan serialization for rule packs: the rules (fully compiled), the
   prefilter automaton, and the derived tables travel verbatim, so
   loading a plan does none of the work [compile] does.  Two pieces of
   process-local identity are regenerated on read: the telemetry
   registration (stamps are per-process) and each pattern's DFA-cache
   uid (fresh inside [Rx.read_compiled]).  [read] cross-checks every
   table length and index against the rule count, so adversarial bytes
   fail with [Binio.Corrupt] instead of corrupting a scan.

   Rules travel in two parts: their ids eagerly (the telemetry
   registration needs every id before any rule runs), then one
   length-prefixed blob per rule.  [read] does not decode the blobs —
   it stores views into the payload and each [cell] decodes on first
   use, so load time is independent of the rule count.  The deferral is
   sound because the containing pack checksums the whole payload before
   [read] runs: a blob that fails to decode later means the checksum
   itself was forged, and the decode error (a [Binio] exception at
   first use of that rule) is memory-safe, just no longer typed. *)

let write buf t =
  let rules_vec = Array.map cell_rule t.rule_arr in
  Binio.w_array
    (fun buf (r : Rule.t) -> Binio.w_str buf r.Rule.id)
    buf rules_vec;
  Binio.w_array
    (fun buf rule ->
      let blob = Buffer.create 512 in
      Rule.write blob rule;
      Binio.w_str buf (Buffer.contents blob))
    buf rules_vec;
  Acsearch.write buf t.prefilter;
  Binio.w_array (fun buf i -> Binio.w_u32 buf i) buf t.owner;
  Binio.w_list (fun buf i -> Binio.w_u32 buf i) buf t.unconditional;
  Binio.w_array Binio.w_bool buf t.has_literals;
  Binio.w_array
    (Binio.w_opt (fun buf (f, w) ->
         Binio.w_u32 buf f;
         Binio.w_u32 buf w))
    buf t.extent

let read r =
  let ids = Binio.r_array Binio.r_str r in
  let nrules = Array.length ids in
  let nblobs = Binio.r_count r in
  if nblobs <> nrules then
    raise (Binio.Corrupt "rule blob count does not match the id count");
  let rule_arr =
    Array.init nrules (fun i ->
        let len = Binio.r_u32 r in
        let view = Binio.r_view r len in
        let id = ids.(i) in
        {
          filled = Atomic.make None;
          decode =
            (fun () ->
              let r = Binio.sub_reader view in
              let rule = Rule.read r in
              if not (Binio.at_end r) then
                raise (Binio.Corrupt "trailing bytes in rule blob");
              if not (String.equal rule.Rule.id id) then
                raise (Binio.Corrupt "rule blob id mismatch");
              rule);
        })
  in
  let check_rule i =
    if i < 0 || i >= nrules then
      raise (Binio.Corrupt (Printf.sprintf "rule index %d out of range" i));
    i
  in
  let prefilter = Acsearch.read r in
  let owner = Binio.r_array (fun r -> check_rule (Binio.r_u32 r)) r in
  if Array.length owner <> Acsearch.pattern_count prefilter then
    raise (Binio.Corrupt "owner table does not match the prefilter");
  let unconditional = Binio.r_list (fun r -> check_rule (Binio.r_u32 r)) r in
  let has_literals = Binio.r_array Binio.r_bool r in
  let extent =
    Binio.r_array
      (Binio.r_opt (fun r ->
           let f = Binio.r_u32 r in
           let w = Binio.r_u32 r in
           (f, w)))
      r
  in
  if Array.length has_literals <> nrules || Array.length extent <> nrules then
    raise (Binio.Corrupt "per-rule tables do not match the rule count");
  {
    rule_arr;
    prefilter;
    owner;
    unconditional;
    has_literals;
    extent;
    tele = Telemetry.Rules.define ids;
    (* default thunk fuses from the decoded rules on first scan;
       rule packs carrying a pre-built fused section replace it via
       [set_fused_thunk], keeping load time free of the fuse cost *)
    fused = fused_of_cells rule_arr;
  }

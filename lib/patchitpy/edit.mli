(** Edit deltas: the unit of change the incremental patch pipeline is
    built on.

    A patch round no longer rebuilds the source string once per
    application.  Each application is recorded as an edit — an old-text
    span and its replacement — and the whole round is materialized in a
    single left-to-right pass through an edit buffer ({!apply}).  The
    same deltas then drive offset/line remapping of findings that were
    not touched by the round ({!map_offset}, {!line_delta_before}) and
    the dirty-region computation of the incremental re-scan. *)

type t = {
  start : int;  (** first byte of the replaced old-text span *)
  stop : int;  (** one past the last replaced byte; [start = stop] inserts *)
  repl : string;  (** the replacement text *)
}

val delta : t -> int
(** Byte-length change: [length repl - (stop - start)]. *)

val newline_delta : t -> int
(** Newline-count change: newlines in [repl] minus newlines removed.
    Requires the old source to count removed newlines — see
    {!newline_delta_in}. *)

val newlines : ?start:int -> ?stop:int -> string -> int
(** Newlines in [s.[start..stop-1]] (defaults: the whole string). *)

val newline_delta_in : string -> t -> int
(** {!newline_delta} against the old source the edit applies to. *)

val valid : string -> t list -> bool
(** The edits are sorted by [start], pairwise non-overlapping, and in
    bounds for the given old source. *)

val apply : string -> t list -> string
(** [apply source edits] materializes every edit in one pass through an
    output buffer — O(|source| + Σ|repl|) regardless of how many edits
    the round produced, where the seed patcher's per-application string
    splice was O(|source|) {e each}.  [edits] must satisfy {!valid}.
    Records the bytes moved through the buffer in the
    [edit_bytes_moved_total] telemetry counter. *)

val map_offset : t list -> int -> int
(** [map_offset edits o] maps an old-source offset [o] that lies at or
    after the end of every edit span it follows — i.e. outside every
    edited span — to its new-source offset: [o] plus the byte deltas of
    all edits ending at or before [o].  Offsets inside an edited span
    have no well-defined image; callers only remap positions proven
    clean. *)

val map_offset_left : t list -> int -> int
(** Like {!map_offset}, but an insertion sitting exactly at [o] does
    {e not} shift it: the image is the position {e before} text the
    insert added.  Dirty-region starts use this so a region beginning
    at offset 0 (or exactly at an insertion point) still covers the
    inserted text. *)

val line_delta_before : string -> t list -> int -> int
(** [line_delta_before old_source edits o] is the net newline-count
    change of all edits ending at or before old offset [o] — the line
    shift a clean finding at [o] experiences. *)

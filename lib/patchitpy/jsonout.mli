(** Machine-readable output for IDE integration.

    The paper's VS Code extension consumes the analyzer's output to draw
    pop-ups and apply TextEdits; this module renders findings and patch
    results as JSON so any editor plugin can do the same.  The emitter is
    self-contained (no JSON library in the sealed environment) and
    escapes per RFC 8259. *)

val escape_string : string -> string
(** JSON string escaping, without the surrounding quotes. *)

val findings_to_json :
  ?warnings:Scanner.warning list -> file:string -> Engine.finding list -> string
(** A JSON document: [{"file": ..., "findings": [...], "warnings":
    [...], "summary": ...}].  Each finding carries rule id, CWE, OWASP
    category, severity, line/column, the matched snippet, and whether a
    fix is available.  [warnings] (default none) lists scan-degradation
    events — rules skipped after exhausting their backtracking budget —
    as [{"type": "budgetExhausted", "rule": ...}] objects. *)

val patch_to_json : file:string -> Patcher.result -> string
(** A JSON document with the rewritten source, the per-application edits
    (line, before, after, rule), imports added, and remaining findings. *)

val to_sarif : ?rules:Rule.t list -> (string * Engine.finding list) list -> string
(** SARIF 2.1.0 output for a set of scanned files — the interchange
    format CI systems and code-hosting platforms ingest from static
    analyzers.  [rules] (default the Python catalog) populates the tool
    driver's rule metadata; results reference rules by id. *)

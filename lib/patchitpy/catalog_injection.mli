(** Rule catalog: see {!Catalog} for the assembled rule set. *)

val rules : unit -> Rule.t list

(** Declarative rewrite IR.

    The computed part of a rule's fix as pure data: a template of
    literal/group/conditional ops evaluated against the rule pattern's
    match.  Because it contains no function values it serializes into
    rule packs ({!Rulepack}) and renders to a textual form for
    inspection. *)

type src =
  | Whole  (** the full matched substring *)
  | Grp of int  (** captured group [i] (1-based), [""] when unset *)

type xform =
  | Trim  (** [String.trim] *)
  | Uppercase
  | Lowercase
  | Drop_last of int  (** drop the last [n] bytes (clamped at empty) *)
  | Subst of { pat : string; with_ : string }
      (** replace every match of [pat] with the {!Rx.replace} template
          [with_] *)
  | Subst_each of { pat : string; body : tmpl }
      (** replace every match of [pat] with [body] evaluated against
          that inner match *)
  | Join_each of { pat : string; body : tmpl; sep : string }
      (** evaluate [body] against every match of [pat] and join the
          results with [sep], discarding the rest of the subject *)

and test =
  | Is_empty
  | Starts_with of string
  | Ends_with of string
  | Contains of string
  | Min_matches of string * int
      (** at least [n] matches of the pattern in the subject *)

and cond = { subject : src; via : xform list; test : test }

and op =
  | Lit of string
  | Str of src * xform list  (** source text piped through the transforms *)
  | Cond of cond * tmpl * tmpl

and tmpl = op list

type t = tmpl

val eval : t -> Rx.m -> string
(** Evaluates the template against a match of the rule pattern.
    Embedded patterns go through the {!Rx.compile} memo, so repeated
    evaluation costs a table lookup, as the former closures did. *)

val validate : t -> (unit, string) result
(** Checks every embedded regex compiles.  Rule-pack loading runs this
    so a corrupt IR surfaces as a typed load error, not a
    [Rx.Parse_error] in the middle of a patch. *)

val render : t -> string
(** Canonical textual (s-expression) form; the storage encoding inside
    rule packs. *)

val parse : string -> (t, string) result
(** Inverse of {!render}: [parse (render t) = Ok t]. *)

(** Shorthands used by the rule catalogs. *)

val lit : string -> op
val grp : ?via:xform list -> int -> op
val whole : ?via:xform list -> unit -> op
val cond : ?via:xform list -> src -> test -> then_:tmpl -> else_:tmpl -> op
val subst : string -> string -> xform

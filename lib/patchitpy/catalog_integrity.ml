(* Software/data-integrity rules (OWASP A08): unsafe deserialization and
   untrusted code inclusion.  PIT-070 .. PIT-076. *)

let r = Rule.make

let compiled =
  lazy
  [
    r ~id:"PIT-070" ~title:"pickle.loads on untrusted bytes executes code"
      ~cwe:502 ~severity:Rule.Critical
      ~pattern:{|pickle\.loads\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "json.loads($1)")
      ~imports:[ "import json" ]
      ~note:
        "Deserialize untrusted data with a data-only format such as JSON." ();
    r ~id:"PIT-071" ~title:"pickle.load on untrusted files executes code"
      ~cwe:502 ~severity:Rule.Critical
      ~pattern:{|pickle\.load\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "json.load($1)")
      ~imports:[ "import json" ]
      ~note:
        "Deserialize untrusted data with a data-only format such as JSON." ();
    r ~id:"PIT-072" ~title:"marshal deserialization of untrusted data"
      ~cwe:502 ~severity:Rule.High
      ~pattern:{|marshal\.loads\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "json.loads($1)")
      ~imports:[ "import json" ]
      ~note:"marshal is not safe against malicious input; use JSON." ();
    r ~id:"PIT-073" ~title:"jsonpickle.decode reconstructs arbitrary objects"
      ~cwe:502 ~severity:Rule.High
      ~pattern:{|jsonpickle\.decode\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "json.loads($1)")
      ~imports:[ "import json" ]
      ~note:"Use plain json for untrusted payloads." ();
    r ~id:"PIT-074" ~title:"torch.load without weights_only"
      ~cwe:502 ~severity:Rule.High
      ~pattern:{|torch\.load\(([^)\n]*)\)|}
      ~suppress:{|weights_only\s*=\s*True|}
      ~fix:
        (Rule.Rewrite
           Rewrite.
             [ Cond
                 ( { subject = Grp 1; via = []; test = Is_empty },
                   [ Lit "torch.load(weights_only=True)" ],
                   [ Lit "torch.load(";
                     Str (Grp 1, []);
                     Lit ", weights_only=True)" ] ) ])
      ~note:"torch.load unpickles; restrict it to tensor data." ();
    r ~id:"PIT-075" ~title:"Downloaded content executed directly"
      ~cwe:494 ~severity:Rule.Critical
      ~pattern:{|exec\(\s*(?:urllib|requests)\.|}
      ~note:"Never execute downloaded code without integrity verification." ();
    r ~id:"PIT-076" ~title:"Module imported from request data"
      ~cwe:829 ~severity:Rule.High
      ~pattern:{|(?:__import__|importlib\.import_module)\(\s*request\.|}
      ~note:"Import targets must come from a fixed allowlist." ();
  ]

let rules () = Lazy.force compiled

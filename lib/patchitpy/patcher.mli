(** Phase 2: automated remediation.

    Applies each triggered rule's safe alternative in place, then inserts
    any imports the patches require at the top of the file — the
    behaviour the VS Code extension binds to its "patch" action (the
    paper uses the TextEdit/Position APIs for the same two steps). *)

type application = { rule : Rule.t; line : int; before : string; after : string }

type result = {
  original : string;
  patched : string;  (** the rewritten source *)
  applications : application list;  (** in application order *)
  imports_added : string list;
  remaining : Engine.finding list;
      (** findings still present after patching: detection-only rules and
          fixes whose replacement did not eliminate the pattern *)
  rounds_used : int;  (** fix rounds that applied at least one rewrite *)
  converged : bool;
      (** [true] when patching reached a fixpoint (a round found nothing
          fixable left); [false] when the round cap cut it off.  The
          distinction — with round counts, per-round application counts
          and import add/remove tallies — is also recorded in
          {!Telemetry} when a sink is installed. *)
}

val patch :
  ?scanner:Scanner.t ->
  ?rules:Rule.t list ->
  ?rounds:int ->
  ?manage_imports:bool ->
  string ->
  result
(** Detects and patches until no fixable finding remains (bounded number
    of [rounds], default 4, since a fix can expose or displace another
    pattern).  [scanner], when given, is the compiled plan to use and
    takes precedence over [rules] — batch callers compile once and reuse
    it across files; otherwise [rules] is compiled, or the process-wide
    default plan is used.  [manage_imports] (default [true]) controls the
    insert-required/drop-stale import pass; disabling it exists for the
    ablation study. *)

val insert_imports : string -> string list -> string * string list
(** [insert_imports src imports] adds the import lines that are not
    already present, after the shebang/docstring/import prologue.
    Returns the new source and the imports actually added. *)

val changed : result -> bool
(** Whether patching modified the source at all. *)

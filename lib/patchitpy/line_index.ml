(* starts.(i) is the byte offset of the first character of line i+1;
   starts.(0) = 0 always, and a trailing newline contributes a final
   (possibly empty) line, exactly like counting '\n's up to the offset. *)

type t = int array

let build source =
  let n = String.length source in
  let count = ref 1 in
  for i = 0 to n - 1 do
    if source.[i] = '\n' then incr count
  done;
  let starts = Array.make !count 0 in
  let next = ref 1 in
  for i = 0 to n - 1 do
    if source.[i] = '\n' then begin
      starts.(!next) <- i + 1;
      incr next
    end
  done;
  starts

(* Greatest i with starts.(i) <= offset. *)
let locate starts offset =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= offset then lo := mid else hi := mid - 1
  done;
  !lo

let line t offset = locate t offset + 1
let column t offset = offset - t.(locate t offset)

(* starts.(i) is the byte offset of the first character of line i+1;
   starts.(0) = 0 always, and a trailing newline contributes a final
   (possibly empty) line, exactly like counting '\n's up to the offset. *)

type t = int array

let build source =
  (* both passes jump newline to newline via memchr rather than walking
     bytes — the index is rebuilt on every scan with findings *)
  let count = ref 1 in
  let i = ref 0 in
  (try
     while true do
       i := String.index_from source !i '\n' + 1;
       incr count
     done
   with Not_found -> ());
  let starts = Array.make !count 0 in
  let next = ref 1 in
  i := 0;
  (try
     while true do
       i := String.index_from source !i '\n' + 1;
       starts.(!next) <- !i;
       incr next
     done
   with Not_found -> ());
  starts

(* Incremental re-index under a round of edits.  New line starts are
   exactly: old starts at or before an edit's span (the text before it
   is untouched), the positions following each '\n' of a replacement
   text, and old starts after an edit shifted by its byte delta.  Old
   starts whose preceding newline was inside a replaced span vanish with
   it.  Pushes are strictly increasing, so the result is sorted without
   a final sort. *)
let update (starts : t) (edits : Edit.t list) : t =
  if edits = [] then starts
  else begin
    let n = Array.length starts in
    let buf = ref (Array.make (n + 16) 0) in
    let count = ref 0 in
    let push v =
      if !count = Array.length !buf then begin
        let grown = Array.make (2 * !count) 0 in
        Array.blit !buf 0 grown 0 !count;
        buf := grown
      end;
      !buf.(!count) <- v;
      incr count
    in
    push 0;
    let j = ref 1 (* starts.(0) = 0 is always kept *) in
    let shift = ref 0 in
    List.iter
      (fun (e : Edit.t) ->
        (* untouched prefix: a line start at or before [e.start] has its
           newline strictly before the replaced span *)
        while !j < n && starts.(!j) <= e.Edit.start do
          push (starts.(!j) + !shift);
          incr j
        done;
        (* line starts contributed by the replacement text *)
        String.iteri
          (fun k c -> if c = '\n' then push (e.Edit.start + !shift + k + 1))
          e.Edit.repl;
        (* drop old starts whose newline lived in the replaced span *)
        while !j < n && starts.(!j) <= e.Edit.stop do
          incr j
        done;
        shift := !shift + Edit.delta e)
      edits;
    while !j < n do
      push (starts.(!j) + !shift);
      incr j
    done;
    Array.sub !buf 0 !count
  end

(* Greatest i with starts.(i) <= offset. *)
let locate starts offset =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= offset then lo := mid else hi := mid - 1
  done;
  !lo

let line t offset = locate t offset + 1
let column t offset = offset - t.(locate t offset)

let line_count t = Array.length t

let line_start t l =
  let i = min (max (l - 1) 0) (Array.length t - 1) in
  t.(i)

let line_end_offset t ~source l =
  if l >= Array.length t then String.length source else t.(l) - 1

(** A small JSON parser (RFC 8259), the input side of {!Jsonout}.

    Self-contained like every other substrate here; it backs the custom
    rule files ({!Rule_file}) that let users extend the catalog the way
    Semgrep users write registry rules. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parses one JSON document.  Errors carry the byte offset.  Total on
    arbitrary input: malformed, truncated, or adversarial payloads
    (including pathological nesting, bounded at 255 container levels)
    return [Error], never raise — the server feeds it untrusted bytes. *)

(** {1 Accessors} *)

val member : string -> value -> value option
(** Object field lookup; [None] on missing fields or non-objects. *)

val to_string : value -> string option
val to_number : value -> float option
val to_list : value -> value list option
val to_bool : value -> bool option

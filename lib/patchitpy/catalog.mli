(** The assembled rule set.

    The paper's tool executes 85 detection rules, each carrying its
    remediation; this module concatenates the per-category catalogs and
    offers lookups.  Compilation is lazy: the first call to {!all} (or
    {!javascript}) runs {!Rule.make} over every declaration — id
    uniqueness is validated in the same step — and later calls share
    the result.  Laziness is what lets a process whose scanner comes
    from a rule pack start without compiling a single source
    pattern. *)

val all : unit -> Rule.t list
(** All rules, in id order.  Length is 85, as in the paper (§II-A). *)

val count : unit -> int

val find : string -> Rule.t option
(** Lookup by rule id, e.g. ["PIT-045"]. *)

val by_owasp : Owasp.category -> Rule.t list

val by_cwe : int -> Rule.t list

val covered_cwes : unit -> int list
(** Distinct CWEs the rules detect, ascending. *)

val fixable_count : unit -> int
(** Number of rules that carry an automatic fix. *)

val javascript : unit -> Rule.t list
(** The JavaScript rule pack — the paper's "support other programming
    languages" future work.  Not part of {!all} (the Python tool runs
    exactly 85 rules); pass it to [Engine.scan ~rules]. *)

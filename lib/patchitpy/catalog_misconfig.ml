(* Security-misconfiguration rules (OWASP A05): debug modes, bind
   addresses, cookie flags, CSRF, unsafe loaders, XXE, archive
   extraction, temp files and permissions.  PIT-045 .. PIT-060. *)

let r = Rule.make

open Rewrite

(* Strips an explicit Loader=... argument when rewriting yaml.load to
   yaml.safe_load (safe_load chooses the loader itself). *)
let safe_load_rewrite =
  [ Lit "yaml.safe_load(";
    Str (Grp 1, [ Subst { pat = {|\s*,\s*Loader\s*=\s*[\w.]+|}; with_ = "" } ]);
    Lit ")" ]

let compiled =
  lazy
  [
    r ~id:"PIT-045" ~title:"Flask running in debug mode"
      ~cwe:489 ~severity:Rule.High
      ~pattern:{|\.run\(([^)\n]*)debug\s*=\s*True([^)\n]*)\)|}
      ~fix:
        (Rule.Replace_template
           ".run($1debug=False, use_debugger=False, use_reloader=False$2)")
      ~note:
        "Debug mode exposes an interactive debugger and stack traces \
         (CWE-209); disable it outside development." ();
    r ~id:"PIT-046" ~title:"Service bound to all interfaces"
      ~cwe:605 ~severity:Rule.Medium
      ~pattern:{|host\s*=\s*["']0\.0\.0\.0["']|}
      ~fix:(Rule.Replace_template {|host="127.0.0.1"|})
      ~note:"Bind to localhost unless external exposure is intended." ();
    r ~id:"PIT-047" ~title:"Cookie set without Secure/HttpOnly"
      ~cwe:614 ~severity:Rule.Medium
      ~pattern:{|(\.set_cookie\((?:[^()\n]|\([^()\n]*\))*)\)|}
      ~suppress:{|secure\s*=\s*True|}
      ~fix:(Rule.Replace_template {|$1, secure=True, httponly=True, samesite="Lax")|})
      ~note:"Mark session cookies Secure, HttpOnly and SameSite." ();
    r ~id:"PIT-048" ~title:"Cookie explicitly marked httponly=False"
      ~cwe:1004 ~severity:Rule.Medium
      ~pattern:{|httponly\s*=\s*False|}
      ~fix:(Rule.Replace_template "httponly=True")
      ~note:"HttpOnly keeps scripts away from session cookies." ();
    r ~id:"PIT-049" ~title:"CSRF protection disabled"
      ~cwe:352 ~severity:Rule.High
      ~pattern:{|(WTF_CSRF_ENABLED["'\]]*\s*=\s*)False|}
      ~fix:(Rule.Replace_template "$1True")
      ~note:"Keep CSRF protection enabled for state-changing routes." ();
    r ~id:"PIT-050" ~title:"yaml.load without a safe loader"
      ~cwe:502 ~severity:Rule.High
      ~pattern:{|yaml\.load\(([^)\n]*)\)|}
      ~suppress:{|SafeLoader|}
      ~fix:(Rule.Rewrite safe_load_rewrite)
      ~note:"yaml.safe_load refuses arbitrary object construction." ();
    r ~id:"PIT-051" ~title:"xml.etree parses untrusted XML (XXE)"
      ~cwe:611 ~severity:Rule.High
      ~pattern:{|xml\.etree\.ElementTree|}
      ~fix:(Rule.Replace_template "defusedxml.ElementTree")
      ~imports:[ "import defusedxml.ElementTree" ]
      ~note:"defusedxml disables entity expansion and DTD retrieval." ();
    r ~id:"PIT-052" ~title:"lxml parser resolves external entities"
      ~cwe:611 ~severity:Rule.High
      ~pattern:{|XMLParser\(([^)\n]*)resolve_entities\s*=\s*True([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "XMLParser($1resolve_entities=False$2)")
      ~note:"Disable entity resolution when parsing untrusted XML." ();
    r ~id:"PIT-053" ~title:"minidom/sax parse untrusted XML"
      ~cwe:776 ~severity:Rule.Medium
      ~pattern:{|xml\.(?:dom\.minidom|sax)\b|}
      ~note:"Use the defusedxml equivalents for untrusted input." ();
    r ~id:"PIT-054" ~title:"tarfile.extractall without a member filter"
      ~cwe:22 ~severity:Rule.High
      ~pattern:{|\b(\w*tar\w*)\.extractall\(([^)\n]*)\)|}
      ~suppress:{|filter\s*=|}
      ~fix:
        (Rule.Rewrite
           [ Str (Grp 1, []);
             Lit ".extractall(";
             Cond
               ( { subject = Grp 2; via = []; test = Is_empty },
                 [ Lit {|filter="data")|} ],
                 [ Str (Grp 2, []); Lit {|, filter="data")|} ] ) ])
      ~note:
        "extractall follows '..' members; pass filter=\"data\" (or validate \
         each member)." ();
    r ~id:"PIT-055" ~title:"zipfile.extractall on untrusted archives"
      ~cwe:22 ~severity:Rule.Medium
      ~pattern:{|\b\w*zip\w*\.extractall\(|}
      ~note:"Validate member names before extraction (Zip Slip)." ();
    r ~id:"PIT-056" ~title:"tempfile.mktemp is race-prone"
      ~cwe:377 ~severity:Rule.Medium
      ~pattern:{|tempfile\.mktemp\(|}
      ~fix:(Rule.Replace_template "tempfile.mkstemp(")
      ~note:"mkstemp creates the file atomically with safe permissions." ();
    r ~id:"PIT-057" ~title:"Hard-coded path under /tmp"
      ~cwe:377 ~severity:Rule.Low
      ~pattern:{|open\(\s*["']/tmp/|}
      ~note:"Use the tempfile module instead of fixed /tmp paths." ();
    r ~id:"PIT-058" ~title:"World-writable permissions"
      ~cwe:732 ~severity:Rule.High
      ~pattern:{|os\.chmod\(([^,\n]+),\s*(?:0o777|0o776|0o766|0o666|511|438)\s*\)|}
      ~fix:(Rule.Replace_template "os.chmod($1, 0o600)")
      ~note:"Grant the minimum file mode the task needs." ();
    r ~id:"PIT-059" ~title:"umask(0) removes default protections"
      ~cwe:276 ~severity:Rule.Medium
      ~pattern:{|os\.umask\(\s*0\s*\)|}
      ~fix:(Rule.Replace_template "os.umask(0o077)")
      ~note:"A permissive umask makes every created file world-accessible." ();
    r ~id:"PIT-060" ~title:"Django DEBUG enabled"
      ~cwe:215 ~severity:Rule.High
      ~pattern:{|^(\s*)DEBUG\s*=\s*True\s*$|}
      ~fix:(Rule.Replace_template "$1DEBUG = False")
      ~note:"DEBUG leaks settings and stack traces in production." ();
  ]

let rules () = Lazy.force compiled

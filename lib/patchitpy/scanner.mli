(** Compiled scan plans.

    {!compile} turns a rule list into an immutable scanner value holding
    everything detection needs that does not depend on the scanned
    source: one shared {!Acsearch} automaton over every rule's
    {!Rx.required_literals} (a single pass over the source yields the
    candidate rule set), the literal→rule ownership map, and the set of
    rules that must always run because no prefilter literal could be
    derived for them.

    Scanners are pure values — no global tables, no caches — so one
    scanner can be shared freely across OCaml 5 domains, and distinct
    catalogs (the Python catalog, the JS pack, a stripped ablation set,
    user rule files) each get their own plan instead of colliding in a
    process-wide table keyed by rule id.

    Per scanned source, {!scan} additionally builds a {!Line_index} once
    and resolves every finding position through it, replacing the seed
    engine's from-byte-0 rescan per finding. *)

type finding = {
  rule : Rule.t;
  line : int;  (** 1-based line of the match start *)
  column : int;  (** 0-based column *)
  offset : int;  (** byte offset of the match start *)
  stop : int;  (** byte offset one past the match end *)
  snippet : string;  (** the matched text, single-line-trimmed *)
  m : Rx.m;  (** the underlying match, used by the patcher *)
}

type warning =
  | Budget_exhausted of string
      (** The named rule hit its {!Rx} backtracking budget on this
          source and was skipped.  Formerly a silent drop; now surfaced
          so reports (and telemetry) can show it. *)

type t
(** A compiled scan plan.  Immutable and domain-safe. *)

val compile : Rule.t list -> t
(** Derives every rule's prefilter literals and builds the shared
    automaton.  Rule order is preserved and ties in finding order break
    on it, so a compiled scanner reports findings exactly as a
    rule-by-rule scan of the same list would. *)

val rules : t -> Rule.t list
(** The rule list the scanner was compiled from, in order. *)

val scan : t -> string -> finding list
(** All findings, sorted by offset then rule id.  Semantics are
    identical to the seed [Engine.scan]: suppress patterns are evaluated
    over the matched lines plus one line of context each side, and a
    rule that exhausts its backtracking budget on a pathological input
    is skipped while the rest of the plan still runs. *)

val scan_with_warnings : t -> string -> finding list * warning list
(** {!scan}, also returning the rules that were skipped because they
    exhausted their backtracking budget (in rule order).  When a
    {!Telemetry} sink is installed, either entry point additionally
    records per-rule wall time, backtracking steps, prefilter
    candidate/match/suppress counts and budget exhaustion. *)

val is_vulnerable : t -> string -> bool

val scan_selection : t -> string -> first_line:int -> last_line:int -> finding list
(** Scans only the selected line range (1-based, inclusive); finding
    positions refer to the whole file. *)

val scan_selection_with_warnings :
  t -> string -> first_line:int -> last_line:int -> finding list * warning list
(** {!scan_selection} with the budget warnings of {!scan_with_warnings}. *)

val telemetry_def : t -> Telemetry.Rules.def
(** The telemetry registration of this plan's rule-id vector — the key
    for picking this scanner's per-rule block out of a
    {!Telemetry.Report}. *)

(** Compiled scan plans.

    {!compile} turns a rule list into an immutable scanner value holding
    everything detection needs that does not depend on the scanned
    source: one shared {!Acsearch} automaton over every rule's
    {!Rx.required_literals} (a single pass over the source yields the
    candidate rule set), the literal→rule ownership map, and the set of
    rules that must always run because no prefilter literal could be
    derived for them.

    Scanners are pure values — no global tables, no caches — so one
    scanner can be shared freely across OCaml 5 domains, and distinct
    catalogs (the Python catalog, the JS pack, a stripped ablation set,
    user rule files) each get their own plan instead of colliding in a
    process-wide table keyed by rule id.

    Per scanned source, {!scan} additionally builds a {!Line_index} once
    and resolves every finding position through it, replacing the seed
    engine's from-byte-0 rescan per finding. *)

type finding = {
  rule : Rule.t;
  line : int;  (** 1-based line of the match start *)
  column : int;  (** 0-based column *)
  offset : int;  (** byte offset of the match start *)
  stop : int;  (** byte offset one past the match end *)
  snippet : string;  (** the matched text, single-line-trimmed *)
  m : Rx.m;  (** the underlying match, used by the patcher *)
}

type warning =
  | Budget_exhausted of string
      (** The named rule hit its {!Rx} backtracking budget on this
          source and was skipped.  Formerly a silent drop; now surfaced
          so reports (and telemetry) can show it. *)

type t
(** A compiled scan plan.  Immutable and domain-safe. *)

type rule_meta = {
  literals : string list;  (** {!Rx.required_literals} of the pattern *)
  extent : (int * int) option;  (** {!Rx.newline_budget} of the pattern *)
}
(** The per-rule analysis {!compile} needs.  Deriving it walks the
    pattern AST twice per rule; it is pure per rule, so callers may
    compute it in parallel with {!derive_meta} and pass the results to
    {!compile} via [?meta]. *)

val derive_meta : Rule.t -> rule_meta
(** The analysis of one rule's pattern: prefilter literals and newline
    budget.  Pure and domain-safe. *)

val compile : ?meta:rule_meta list -> Rule.t list -> t
(** Derives every rule's prefilter literals and builds the shared
    automaton.  Rule order is preserved and ties in finding order break
    on it, so a compiled scanner reports findings exactly as a
    rule-by-rule scan of the same list would.

    [meta], when given, must be [List.map derive_meta rules] (same
    order, same length — the length is checked); supplying it lets the
    caller parallelize the per-rule analysis across domains while the
    automaton build itself stays sequential and deterministic. *)

val rules : t -> Rule.t list
(** The rule list the scanner was compiled from, in order.  On a
    pack-loaded plan this forces every deferred rule decode; prefer
    {!rule_count} when only the count is needed. *)

val rule_count : t -> int
(** Number of rules in the plan, without forcing any deferred decode. *)

val scan : t -> string -> finding list
(** All findings, sorted by offset then rule id.  Semantics are
    identical to the seed [Engine.scan]: suppress patterns are evaluated
    over the matched lines plus one line of context each side, and a
    rule that exhausts its backtracking budget on a pathological input
    is skipped while the rest of the plan still runs. *)

val scan_with_warnings : t -> string -> finding list * warning list
(** {!scan}, also returning the rules that were skipped because they
    exhausted their backtracking budget (in rule order).  When a
    {!Telemetry} sink is installed, either entry point additionally
    records per-rule wall time, backtracking steps, prefilter
    candidate/match/suppress counts and budget exhaustion. *)

val is_vulnerable : t -> string -> bool

val scan_selection : t -> string -> first_line:int -> last_line:int -> finding list
(** Scans only the selected line range (1-based, inclusive); finding
    positions refer to the whole file. *)

val scan_selection_with_warnings :
  t -> string -> first_line:int -> last_line:int -> finding list * warning list
(** {!scan_selection} with the budget warnings of {!scan_with_warnings}. *)

val telemetry_def : t -> Telemetry.Rules.def
(** The telemetry registration of this plan's rule-id vector — the key
    for picking this scanner's per-rule block out of a
    {!Telemetry.Report}. *)

(** {1 The fused scan tier}

    By default a plan additionally fuses every hostable rule pattern
    into one tagged lazy DFA ({!Rx.Fused}) on first scan.  A scan then
    runs the Aho–Corasick literal gate, ONE fused pass over the source
    (an exact per-rule existence filter), and per-rule sweeps only for
    rules the fused pass flagged (plus unhosted rules) — so per-sample
    cost approaches one traversal of the input regardless of catalog
    size, while results stay byte-identical to the per-rule path by
    construction.  The incremental {!rescan} path uses the same filter
    to gate full re-scans of rules without a finite line extent.

    [PATCHITPY_SCAN_TIER=per-rule] in the environment pins plans built
    afterwards to the per-rule path (the escape hatch, mirroring
    [PATCHITPY_RX_TIER]); [PATCHITPY_RX_TIER=backtrack] implies it.
    When the fused pass's bounded transition cache thrashes on a
    subject it bails and that scan transparently reverts to per-rule
    sweeps ([scanner_fused_fallbacks_total] counts these; the flags it
    did compute are discarded).  Counters
    [scanner_fused_candidates_total] (rules flagged) and
    [scanner_fused_confirms_total] (per-rule sweeps those flags
    triggered) size the filter's win. *)

val fused_machine : t -> Rx.fused option
(** The plan's fused catalog machine, fusing it now if this is the
    first use.  [None] when the tier is pinned off or no rule is
    hostable. *)

val per_rule_tier : t -> t
(** A copy of the plan pinned to the per-rule scan path (no fused
    pass, ever).  Scan results are identical by construction; the
    differential suites use the pinned copy as the reference. *)

val set_fused_thunk : t -> (unit -> Rx.fused option) -> unit
(** Replaces how the plan obtains its fused machine on first use —
    rule packs install a thunk decoding the pack's pre-built fused
    section instead of re-fusing from the rules.  No-op on plans with
    the tier pinned off. *)

(** {1 Scan states and incremental re-scanning}

    The incremental patch pipeline scans a source once ({!scan_state}),
    then after each patch round re-scans only the dirty regions around
    the round's edits ({!rescan}), carrying every finding outside those
    regions over with remapped offsets.  The carried/re-scanned split is
    invisible in the result: {!state_findings} of a re-scanned state is
    byte-identical to a full scan of the edited source (any situation
    where regional exactness cannot be maintained — a budget exhaustion
    mid-re-scan, a prior state with warnings — falls back to the full
    scan internally). *)

type state
(** A scanned source with its findings and the bookkeeping {!rescan}
    needs: the line index, the per-rule raw match lists (including
    suppressed matches), and the source's maximal whitespace-run
    newline count (which, with each rule's {!Rx.newline_budget},
    bounds how many lines a dirty region must be widened by). *)

val scan_state : t -> string -> state
(** The full scan of {!scan_with_warnings}, retaining the state the
    incremental re-scan builds on. *)

val state_findings : t -> state -> finding list
(** The findings of a state, sorted by offset then rule id — exactly
    {!scan} of the state's source. *)

val state_source : state -> string
(** The source text the state describes. *)

val state_warnings : state -> warning list
(** The budget warnings of the scan that produced the state. *)

val rescan : t -> state -> Edit.t list -> state
(** [rescan t st edits] is the state of [Edit.apply (state_source st)
    edits]: equivalent to [scan_state] of the edited source, but
    re-running rules only over the dirty regions around the edits
    whenever each rule's {!Rx.newline_budget} proves that safe.
    [edits] must satisfy {!Edit.valid} against the state's source.
    Records [scanner_rescans_total], [scanner_rescan_full_fallbacks_total],
    [scanner_findings_reused_total], [scanner_findings_recomputed_total]
    and the [scanner_dirty_region_pct] histogram when a telemetry sink
    is installed. *)

(** {1 Binary codec}

    Plan serialization for rule packs.  A plan read back performs no
    compilation: rules, prefilter automaton and derived tables travel
    verbatim; only process-local identity (telemetry registration,
    DFA-cache keys) is regenerated.  Scanning with a decoded plan is
    byte-identical to scanning with the [compile]-built one. *)

val write : Buffer.t -> t -> unit

val read : Binio.r -> t
(** @raise Binio.Corrupt on structurally invalid input (indices and
    table lengths are cross-checked against the rule count).
    @raise Binio.Truncated if the input ends early. *)

type finding = Scanner.finding = {
  rule : Rule.t;
  line : int;
  column : int;
  offset : int;
  stop : int;
  snippet : string;
  m : Rx.m;
}

(* The full-catalog scanner, compiled on first use.  An [Atomic] rather
   than a [lazy] so concurrent first calls from several domains are
   safe: the race is at worst a duplicated compile, and whichever value
   wins the CAS is equivalent. *)
let default : Scanner.t option Atomic.t = Atomic.make None

(* Alternative source for the default scanner — how rule packs plug in
   without a dependency cycle (the pack library depends on this one and
   registers here).  Consulted before compiling from source; a provider
   returning [None] falls through to source compilation. *)
let provider : (unit -> Scanner.t option) Atomic.t =
  Atomic.make (fun () -> None)

let set_default_provider f = Atomic.set provider f

let default_scanner () =
  match Atomic.get default with
  | Some scanner -> scanner
  | None ->
    let scanner =
      match (Atomic.get provider) () with
      | Some scanner -> scanner
      | None -> Scanner.compile (Catalog.all ())
    in
    if Atomic.compare_and_set default None (Some scanner) then scanner
    else (
      match Atomic.get default with
      | Some winner -> winner
      | None -> scanner)

let scanner_for = function
  | None -> default_scanner ()
  | Some rules -> Scanner.compile rules

let scan ?rules source = Scanner.scan (scanner_for rules) source
let is_vulnerable ?rules source = Scanner.is_vulnerable (scanner_for rules) source

let scan_selection ?rules source ~first_line ~last_line =
  Scanner.scan_selection (scanner_for rules) source ~first_line ~last_line

let distinct_cwes findings =
  List.sort_uniq compare (List.map (fun f -> f.rule.Rule.cwe) findings)

(* Callers resolve many offsets against the same source, so rebuilding
   the index per call was O(|source|) each time.  Memoize the last
   (source, index) pair per domain — domain-local state, so concurrent
   domains never share or race it.  Hits are recognized by physical
   equality: the common caller holds one source string and queries it
   repeatedly, and a miss merely rebuilds (never returns wrong data). *)
let line_index_memo : (string * Line_index.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let line_of_offset source offset =
  let memo = Domain.DLS.get line_index_memo in
  let index =
    match !memo with
    | Some (s, index) when s == source -> index
    | _ ->
      let index = Line_index.build source in
      memo := Some (source, index);
      index
  in
  Line_index.line index offset

type finding = Scanner.finding = {
  rule : Rule.t;
  line : int;
  column : int;
  offset : int;
  stop : int;
  snippet : string;
  m : Rx.m;
}

(* The full-catalog scanner, compiled on first use.  An [Atomic] rather
   than a [lazy] so concurrent first calls from several domains are
   safe: the race is at worst a duplicated compile, and whichever value
   wins the CAS is equivalent. *)
let default : Scanner.t option Atomic.t = Atomic.make None

let default_scanner () =
  match Atomic.get default with
  | Some scanner -> scanner
  | None ->
    let scanner = Scanner.compile Catalog.all in
    if Atomic.compare_and_set default None (Some scanner) then scanner
    else (
      match Atomic.get default with
      | Some winner -> winner
      | None -> scanner)

let scanner_for = function
  | None -> default_scanner ()
  | Some rules -> Scanner.compile rules

let scan ?rules source = Scanner.scan (scanner_for rules) source
let is_vulnerable ?rules source = Scanner.is_vulnerable (scanner_for rules) source

let scan_selection ?rules source ~first_line ~last_line =
  Scanner.scan_selection (scanner_for rules) source ~first_line ~last_line

let distinct_cwes findings =
  List.sort_uniq compare (List.map (fun f -> f.rule.Rule.cwe) findings)

let line_of_offset source offset = Line_index.line (Line_index.build source) offset

(* JavaScript rule pack — the paper's stated future work ("support other
   programming languages").  The engine is language-agnostic: rules are
   lexical patterns with attached remediation, so a second language is a
   second catalog.  Ids are namespaced PIT-JS-0xx and the pack is kept
   out of {!(Catalog.all ())} (the Python tool of the paper runs exactly 85
   rules); select it with [Engine.scan ~rules:(Catalog.javascript ())]. *)

let r = Rule.make

let compiled =
  lazy
  [
    r ~id:"PIT-JS-001" ~title:"eval() on dynamic input"
      ~cwe:95 ~severity:Rule.Critical
      ~pattern:{|\beval\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "JSON.parse($1)")
      ~note:"If the input is data, parse it; never execute it." ();
    r ~id:"PIT-JS-002" ~title:"new Function() compiles strings to code"
      ~cwe:95 ~severity:Rule.Critical
      ~pattern:{|new\s+Function\(|}
      ~note:"Equivalent to eval; redesign to avoid runtime code creation." ();
    r ~id:"PIT-JS-003" ~title:"Shell command built from template or concat"
      ~cwe:78 ~severity:Rule.High
      ~pattern:{|\bexec\(\s*(?:`[^`\n]*\$\{|["'][^"'\n]*["']\s*\+)|}
      ~note:"Use execFile with an argument array instead of a shell string." ();
    r ~id:"PIT-JS-004" ~title:"innerHTML assignment renders unescaped markup"
      ~cwe:79 ~severity:Rule.High
      ~pattern:{|\.innerHTML\s*=|}
      ~suppress:{|DOMPurify|sanitize|}
      ~fix:(Rule.Replace_template ".textContent =")
      ~note:"textContent cannot inject markup; sanitize if HTML is needed." ();
    r ~id:"PIT-JS-005" ~title:"document.write of dynamic content"
      ~cwe:79 ~severity:Rule.Medium
      ~pattern:{|document\.write\(|}
      ~note:"Build DOM nodes instead; document.write enables injection." ();
    r ~id:"PIT-JS-006" ~title:"Weak hash algorithm"
      ~cwe:327 ~severity:Rule.High
      ~pattern:{|createHash\(\s*["'](?:md5|sha1)["']\s*\)|}
      ~fix:(Rule.Replace_template {|createHash("sha256")|})
      ~note:"Use SHA-256 or stronger." ();
    r ~id:"PIT-JS-007" ~title:"Math.random() used for a security value"
      ~cwe:330 ~severity:Rule.High
      ~pattern:
        {|(\w*(?:token|secret|key|otp|nonce)\w*)\s*=\s*[^;\n]*Math\.random\(\)[^;\n]*|}
      ~fix:(Rule.Replace_template {|$1 = crypto.randomBytes(32).toString("hex")|})
      ~imports:[ {|const crypto = require("crypto");|} ]
      ~note:"Math.random is predictable; use crypto.randomBytes." ();
    r ~id:"PIT-JS-008" ~title:"TLS certificate rejection disabled"
      ~cwe:295 ~severity:Rule.High
      ~pattern:{|rejectUnauthorized\s*:\s*false|}
      ~fix:(Rule.Replace_template "rejectUnauthorized: true")
      ~note:"Never accept unverified certificates in production." ();
    r ~id:"PIT-JS-009" ~title:"TLS verification disabled process-wide"
      ~cwe:295 ~severity:Rule.High
      ~pattern:{|NODE_TLS_REJECT_UNAUTHORIZED["'\]]*\s*=\s*["']0["']|}
      ~note:"Remove the override; it disables TLS verification globally." ();
    r ~id:"PIT-JS-010" ~title:"Redirect target taken from the request"
      ~cwe:601 ~severity:Rule.Medium
      ~pattern:{|res\.redirect\(\s*req\.(?:query|params|body)|}
      ~note:"Validate redirect targets against an allowlist." ();
    r ~id:"PIT-JS-011" ~title:"SQL built from template or concatenation"
      ~cwe:89 ~severity:Rule.Critical
      ~pattern:{|\.query\(\s*(?:`[^`\n]*\$\{|["'][^"'\n]*["']\s*\+)|}
      ~note:"Use parameterized queries: query(sql, [params])." ();
    r ~id:"PIT-JS-012" ~title:"Hard-coded credential"
      ~cwe:798 ~severity:Rule.Critical
      ~pattern:{|\b(password|secret|apiKey|api_key)\s*[:=]\s*["'][^"'\n]+["']|}
      ~suppress:{|process\.env|}
      ~fix:
        (Rule.Rewrite
           Rewrite.
             [ Str (Grp 1, []);
               Cond
                 ( { subject = Whole; via = []; test = Contains ":" },
                   [ Lit ": " ],
                   [ Lit " = " ] );
               Lit "process.env.";
               Str (Grp 1, [ Uppercase ]) ])
      ~note:"Read credentials from the environment or a secret store." ();
    r ~id:"PIT-JS-013" ~title:"Deprecated unsafe Buffer constructor"
      ~cwe:20 ~severity:Rule.Medium
      ~pattern:{|new\s+Buffer\(|}
      ~fix:(Rule.Replace_template "Buffer.from(")
      ~note:"new Buffer(number) leaks uninitialized memory." ();
    r ~id:"PIT-JS-014" ~title:"World-writable permissions"
      ~cwe:732 ~severity:Rule.High
      ~pattern:{|chmod(?:Sync)?\(([^,\n]+),\s*(?:0o777|511|"777")\s*\)|}
      ~fix:
        (Rule.Rewrite
           Rewrite.[ Lit "chmod("; Str (Grp 1, []); Lit ", 0o600)" ])
      ~note:"Grant the minimum file mode the task needs." ();
    r ~id:"PIT-JS-015" ~title:"Cleartext HTTP endpoint"
      ~cwe:319 ~severity:Rule.Medium
      ~pattern:{|(fetch\(\s*["']|axios\.\w+\(\s*["'])http://|}
      ~suppress:{|localhost|127\.0\.0\.1|}
      ~fix:(Rule.Replace_template "$1https://")
      ~note:"Use HTTPS endpoints." ();
    r ~id:"PIT-JS-016" ~title:"JWT accepted with the 'none' algorithm"
      ~cwe:347 ~severity:Rule.High
      ~pattern:{|algorithms\s*:\s*\[\s*["']none["']|}
      ~note:"Never accept unsigned tokens; pin a real algorithm list." ();
  ]

let rules () = Lazy.force compiled

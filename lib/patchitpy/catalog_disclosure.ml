(* Disclosure, authentication, availability and SSRF rules (OWASP A04,
   A07, A09, A10).  PIT-077 .. PIT-085. *)

let r = Rule.make

open Rewrite

(* Redacts any {..password..} interpolation inside a logged f-string. *)
let redact_password =
  [ Str
      (Whole, [ Subst { pat = {|\{\s*\w*[Pp]assword\w*\s*\}|}; with_ = "***" } ])
  ]

let compiled =
  lazy
  [
    r ~id:"PIT-077" ~title:"Timing-unsafe comparison of a secret"
      ~cwe:287 ~severity:Rule.Medium
      ~pattern:
        {|if\s+(\w*(?:hash|token|password|digest|hmac|signature)\w*(?:\.hexdigest\(\))?)\s*==\s*([^:\n]+):|}
      ~suppress:{|compare_digest|}
      ~fix:(Rule.Replace_template "if hmac.compare_digest($1, $2):")
      ~imports:[ "import hmac" ]
      ~note:"String == leaks timing; use hmac.compare_digest." ();
    r ~id:"PIT-078" ~title:"Password-reset token derived from the clock"
      ~cwe:640 ~severity:Rule.High
      ~pattern:{|(\w*(?:reset|token)\w*)\s*=\s*str\(\s*time\.time\(\)\s*\)|}
      ~fix:(Rule.Replace_template "$1 = secrets.token_urlsafe(32)")
      ~imports:[ "import secrets" ]
      ~note:"Reset tokens must be unguessable; use the secrets module." ();
    r ~id:"PIT-079" ~title:"Trivial password length policy"
      ~cwe:521 ~severity:Rule.Low
      ~pattern:{|len\(\s*\w*password\w*\s*\)\s*[<>=!]+\s*[0-5]\b|}
      ~note:"Enforce a meaningful minimum password length (>= 8)." ();
    r ~id:"PIT-080" ~title:"Password written to a log"
      ~cwe:532 ~severity:Rule.High
      ~pattern:{|logging\.(?:info|warning|error|debug)\(\s*f"[^"\n]*\{\s*\w*[Pp]assword\w*\s*\}[^"\n]*"|}
      ~fix:(Rule.Rewrite redact_password)
      ~note:"Never log credentials, even at debug level." ();
    r ~id:"PIT-081" ~title:"Secret printed to stdout"
      ~cwe:532 ~severity:Rule.Medium
      ~pattern:{|print\(\s*f?"[^"\n]*(?:\{\s*)?\w*[Pp]assword|}
      ~note:"Remove credential output from the program." ();
    r ~id:"PIT-082" ~title:"Exception detail returned to the client"
      ~cwe:209 ~severity:Rule.Medium
      ~pattern:{|return\s+str\(\s*(?:e|err|error|exc|exception)\w*\s*\)(\s*,\s*\d+)?|}
      ~fix:(Rule.Replace_template {|return "Internal Server Error", 500|})
      ~note:"Log the exception server-side; answer with a generic message." ();
    r ~id:"PIT-083" ~title:"Traceback returned to the client"
      ~cwe:209 ~severity:Rule.Medium
      ~pattern:{|return\s+traceback\.format_exc\(\)|}
      ~fix:(Rule.Replace_template {|return "Internal Server Error", 500|})
      ~note:"Log the traceback server-side; answer with a generic message." ();
    r ~id:"PIT-084" ~title:"Outbound request without a timeout"
      ~cwe:400 ~severity:Rule.Low
      ~pattern:{|requests\.(?:get|post|put|delete|head)\(([^)\n]*)\)|}
      ~suppress:{|timeout\s*=|}
      ~fix:
        (Rule.Rewrite
           [ Str (Whole, [ Drop_last 1 ]);
             Cond
               ( { subject = Grp 1; via = []; test = Is_empty },
                 [ Lit "timeout=10)" ],
                 [ Lit ", timeout=10)" ] ) ])
      ~note:"A hung endpoint otherwise blocks the worker forever." ();
    r ~id:"PIT-085" ~title:"Outbound request URL taken from the request"
      ~cwe:918 ~severity:Rule.High
      ~pattern:{|(?:requests\.(?:get|post)|urlopen)\(\s*request\.|}
      ~note:
        "Server-side request forgery: resolve the target against an \
         allowlist of hosts." ();
  ]

let rules () = Lazy.force compiled

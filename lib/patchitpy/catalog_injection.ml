(* Injection rules (OWASP A03): OS command, code, SQL, XSS, LDAP, XPath,
   template and header injection.  PIT-001 .. PIT-020. *)

let r = Rule.make

open Rewrite

(* Rewrites every "{ident}" interpolation in the matched f-string so the
   value is escaped before rendering (CWE-79); already-escaped
   interpolations pass through unchanged. *)
let escape_interpolations =
  [ Str
      ( Whole,
        [ Subst_each
            { pat = {|\{\s*([A-Za-z_][A-Za-z0-9_.()\[\]'"]*)\s*\}|};
              body =
                [ Cond
                    ( { subject = Grp 1; via = [];
                        test = Starts_with "escape(" },
                      [ Str (Whole, []) ],
                      [ Lit "{escape("; Str (Grp 1, []); Lit ")}" ] ) ] } ] )
  ]

(* Turns `.execute("... %s ..." % args)` into a parameterized query:
   placeholders become '?', args become a tuple second argument. *)
let parameterize_percent =
  [ Lit ".execute(";
    Str (Grp 1, [ Subst { pat = {|'?%s'?|}; with_ = "?" } ]);
    Lit ", ";
    Cond
      ( { subject = Grp 2; via = [ Trim ]; test = Starts_with "(" },
        [ Str (Grp 2, [ Trim ]) ],
        [ Lit "("; Str (Grp 2, [ Trim ]); Lit ",)" ] );
    Lit ")" ]

(* Turns `.execute(f"... {x} ...")` into `.execute("... ? ...", (x,))`:
   each interpolation becomes '?' (a quoted placeholder like '...{x}...'
   drops its quotes) and the interpolated expressions become the
   parameter tuple, with the 1-element form keeping its trailing comma. *)
let fstring_interp = {|\{\s*([^}]+?)\s*\}|}

let parameterize_fstring =
  let args_join =
    Str
      ( Grp 1,
        [ Join_each
            { pat = fstring_interp; body = [ Str (Grp 1, []) ]; sep = ", " }
        ] )
  in
  [ Lit {|.execute("|};
    Str
      ( Grp 1,
        [ Subst_each { pat = fstring_interp; body = [ Lit "?" ] };
          Subst { pat = {|'\?'|}; with_ = "?" } ] );
    Lit {|", |};
    Cond
      ( { subject = Grp 1; via = []; test = Min_matches (fstring_interp, 1) },
        [ Cond
            ( { subject = Grp 1; via = [];
                test = Min_matches (fstring_interp, 2) },
              [ Lit "("; args_join; Lit ")" ],
              [ Lit "("; args_join; Lit ",)" ] ) ],
        [ Lit "()" ] );
    Lit ")" ]

let compiled =
  lazy
  [
    r ~id:"PIT-001" ~title:"os.system() enables shell command injection"
      ~cwe:78 ~severity:Rule.High
      ~pattern:{|\bos\.system\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "subprocess.run(shlex.split($1))")
      ~imports:[ "import subprocess"; "import shlex" ]
      ~note:
        "Run the command without a shell: subprocess.run(shlex.split(cmd))."
      ();
    r ~id:"PIT-002" ~title:"os.popen() enables shell command injection"
      ~cwe:78 ~severity:Rule.High
      ~pattern:{|\bos\.popen\(([^)\n]*)\)|}
      ~fix:
        (Rule.Replace_template
           "subprocess.run(shlex.split($1), capture_output=True, text=True).stdout")
      ~imports:[ "import subprocess"; "import shlex" ]
      ~note:"Capture output through subprocess.run without a shell." ();
    r ~id:"PIT-003" ~title:"subprocess invoked with shell=True"
      ~cwe:78 ~severity:Rule.High
      ~pattern:
        {|\bsubprocess\.(call|run|Popen|check_output|check_call)\(([^)\n]*)shell\s*=\s*True([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "subprocess.$1($2shell=False$3)")
      ~note:"Pass an argument list and shell=False." ();
    r ~id:"PIT-004" ~title:"os.exec*/os.spawn* family with dynamic arguments"
      ~cwe:78 ~severity:Rule.Medium
      ~pattern:{|\bos\.(?:execl|execle|execlp|execv|execve|execvp|spawnl|spawnv)\(|}
      ~note:
        "Validate the executable path and arguments; prefer subprocess with a \
         fixed argv." ();
    r ~id:"PIT-005" ~title:"eval() on dynamic input is code injection"
      ~cwe:95 ~severity:Rule.Critical
      ~pattern:{|\beval\(([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "ast.literal_eval($1)")
      ~imports:[ "import ast" ]
      ~note:"ast.literal_eval only evaluates literal structures." ();
    r ~id:"PIT-006" ~title:"exec() on dynamic input is code injection"
      ~cwe:95 ~severity:Rule.Critical
      ~pattern:{|\bexec\(|}
      ~note:
        "No drop-in safe replacement exists; redesign to avoid executing \
         dynamically assembled code." ();
    r ~id:"PIT-007" ~title:"SQL built with %-formatting"
      ~cwe:89 ~severity:Rule.Critical
      ~pattern:{|\.execute\(\s*(f?"[^"\n]*%s[^"\n]*")\s*%\s*([^)\n]+)\)|}
      ~fix:(Rule.Rewrite parameterize_percent)
      ~note:"Use parameterized queries: execute(sql, params)." ();
    r ~id:"PIT-008" ~title:"SQL built with an f-string"
      ~cwe:89 ~severity:Rule.Critical
      ~pattern:{|\.execute\(\s*f"([^"\n]*\{[^"\n]+\}[^"\n]*)"\s*\)|}
      ~fix:(Rule.Rewrite parameterize_fstring)
      ~note:"Use parameterized queries: execute(sql, params)." ();
    r ~id:"PIT-009" ~title:"SQL built with string concatenation"
      ~cwe:89 ~severity:Rule.Critical
      ~pattern:{|\.execute\(\s*"([^"\n]*)"\s*\+\s*([A-Za-z_][\w.\[\]'"()]*)\s*\)|}
      ~fix:
        (* Drops a trailing opening quote left in the literal ("... = '"). *)
        (Rule.Rewrite
           [ Lit {|.execute("|};
             Str (Grp 1, [ Subst { pat = {|'\s*$|}; with_ = "" } ]);
             Lit {|?", (|};
             Str (Grp 2, []);
             Lit ",))" ])
      ~note:"Use parameterized queries: execute(sql, params)." ();
    r ~id:"PIT-010" ~title:"SQL built with str.format()"
      ~cwe:89 ~severity:Rule.Critical
      ~pattern:{|\.execute\(\s*"([^"\n]*)\{\}([^"\n]*)"\s*\.format\(([^)\n]+)\)\s*\)|}
      ~fix:(Rule.Replace_template {|.execute("$1?$2", ($3,))|})
      ~note:"Use parameterized queries: execute(sql, params)." ();
    r ~id:"PIT-011" ~title:"Unescaped interpolation returned as HTML"
      ~cwe:79 ~severity:Rule.High
      ~pattern:{|return\s+f"[^"\n]*\{[^}"\n]+\}[^"\n]*"|}
      ~suppress:{|escape\(|}
      ~fix:(Rule.Rewrite escape_interpolations)
      ~imports:[ "from markupsafe import escape" ]
      ~note:"Escape user-controlled values before rendering them as HTML." ();
    r ~id:"PIT-012" ~title:"Unescaped interpolation in make_response()"
      ~cwe:79 ~severity:Rule.High
      ~pattern:{|make_response\(\s*f"[^"\n]*\{[^}"\n]+\}[^"\n]*"|}
      ~suppress:{|escape\(|}
      ~fix:(Rule.Rewrite escape_interpolations)
      ~imports:[ "from markupsafe import escape" ]
      ~note:"Escape user-controlled values before rendering them as HTML." ();
    r ~id:"PIT-013" ~title:"HTML assembled by concatenating user input"
      ~cwe:79 ~severity:Rule.High
      ~pattern:{|return\s+("<[^"\n]*")\s*\+\s*([A-Za-z_][\w.\[\]'"()]*)|}
      ~suppress:{|escape\(|}
      ~fix:(Rule.Replace_template "return $1 + escape($2)")
      ~imports:[ "from markupsafe import escape" ]
      ~note:"Escape user-controlled values before rendering them as HTML." ();
    r ~id:"PIT-014" ~title:"render_template_string with dynamic template"
      ~cwe:79 ~severity:Rule.High
      ~pattern:{|render_template_string\(\s*(?:f"|[^)\n]*\+|[^)\n]*%\s)|}
      ~note:
        "Never build templates from user input; render static templates and \
         pass values as context." ();
    r ~id:"PIT-015" ~title:"Jinja2 environment with autoescape disabled"
      ~cwe:94 ~severity:Rule.High
      ~pattern:{|Environment\(([^)\n]*)autoescape\s*=\s*False([^)\n]*)\)|}
      ~fix:(Rule.Replace_template "Environment($1autoescape=True$2)")
      ~note:"Enable autoescape to neutralize markup in template values." ();
    r ~id:"PIT-016" ~title:"Jinja2 environment without autoescape"
      ~cwe:94 ~severity:Rule.Medium
      ~pattern:{|jinja2\.Environment\(([^)\n]*)\)|}
      ~suppress:{|autoescape\s*=|}
      ~fix:
        (Rule.Rewrite
           [ Cond
               ( { subject = Grp 1; via = []; test = Is_empty },
                 [ Lit "jinja2.Environment(autoescape=True)" ],
                 [ Lit "jinja2.Environment(";
                   Str (Grp 1, []);
                   Lit ", autoescape=True)" ] ) ])
      ~note:"Autoescape defaults to off in Jinja2; turn it on explicitly." ();
    r ~id:"PIT-017" ~title:"LDAP filter assembled from dynamic values"
      ~cwe:90 ~severity:Rule.High
      ~pattern:{|\.search(?:_s)?\([^)\n]*(?:f"[^"\n]*\{|%\s*\(|%s)|}
      ~note:
        "Escape filter values with ldap.filter.escape_filter_chars before \
         building search filters." ();
    r ~id:"PIT-018" ~title:"XPath query assembled from dynamic values"
      ~cwe:643 ~severity:Rule.High
      ~pattern:{|\.xpath\(\s*(?:f"[^"\n]*\{|"[^"\n]*"\s*(?:%|\+))|}
      ~note:"Use parameterized XPath variables instead of string building." ();
    r ~id:"PIT-019" ~title:"Template() constructed from user input (SSTI)"
      ~cwe:1336 ~severity:Rule.High
      ~pattern:{|\bTemplate\(\s*(?:f"[^"\n]*\{|[^)\n]*request\.)|}
      ~note:"Treat template source as code: never derive it from requests." ();
    r ~id:"PIT-020" ~title:"HTTP header set from raw request data"
      ~cwe:113 ~severity:Rule.Medium
      ~pattern:{|\.headers\[([^\]\n]+)\]\s*=\s*(request\.[^\n#]+?)\s*$|}
      ~suppress:{|\.replace\(|}
      ~fix:
        (Rule.Replace_template
           {|.headers[$1] = $2.replace("\r", "").replace("\n", "")|})
      ~note:"Strip CR/LF from values placed into response headers." ();
  ]

let rules () = Lazy.force compiled

(* Broken-access-control rules (OWASP A01): path traversal, unrestricted
   upload, open redirect, mass assignment, missing authentication.
   PIT-061 .. PIT-069. *)

let r = Rule.make

let compiled =
  lazy
  [
    r ~id:"PIT-061" ~title:"File opened from raw request data"
      ~cwe:22 ~severity:Rule.High
      ~pattern:{|open\(\s*(request\.[\w.\[\]'"()]+)\s*[,)]|}
      ~suppress:{|secure_filename|basename|}
      ~fix:
        (Rule.Rewrite
           Rewrite.
             [ Lit "open(secure_filename(";
               Str (Grp 1, []);
               Lit ")";
               Cond
                 ( { subject = Whole; via = []; test = Ends_with ")" },
                   [ Lit ")" ],
                   [ Lit "," ] ) ])
      ~imports:[ "from werkzeug.utils import secure_filename" ]
      ~note:"Sanitize request-supplied file names before filesystem use." ();
    r ~id:"PIT-062" ~title:"Path joined with raw request data"
      ~cwe:22 ~severity:Rule.High
      ~pattern:{|os\.path\.join\(([^,\n]+),\s*(request\.[\w.\[\]'"()]+)\s*\)|}
      ~suppress:{|secure_filename|}
      ~fix:(Rule.Replace_template "os.path.join($1, secure_filename($2))")
      ~imports:[ "from werkzeug.utils import secure_filename" ]
      ~note:"Sanitize request-supplied path segments (directory traversal)." ();
    r ~id:"PIT-063" ~title:"Upload saved under its client-chosen name (joined)"
      ~cwe:434 ~severity:Rule.High
      ~pattern:{|(\.save\(\s*os\.path\.join\([^,\n]+,\s*)(\w+\.filename)(\s*\)\s*\))|}
      ~suppress:{|secure_filename|}
      ~fix:(Rule.Replace_template "$1secure_filename($2)$3")
      ~imports:[ "from werkzeug.utils import secure_filename" ]
      ~note:"Never trust the client's filename; sanitize and restrict type." ();
    r ~id:"PIT-064" ~title:"Upload saved under its client-chosen name"
      ~cwe:434 ~severity:Rule.High
      ~pattern:{|\.save\(\s*(\w+\.filename)\s*\)|}
      ~suppress:{|secure_filename|}
      ~fix:(Rule.Replace_template ".save(secure_filename($1))")
      ~imports:[ "from werkzeug.utils import secure_filename" ]
      ~note:"Never trust the client's filename; sanitize and restrict type." ();
    r ~id:"PIT-065" ~title:"Redirect target taken from the request"
      ~cwe:601 ~severity:Rule.Medium
      ~pattern:{|redirect\(\s*request\.(?:args|form|values)|}
      ~note:
        "Validate redirect targets against an allowlist of local paths." ();
    r ~id:"PIT-066" ~title:"send_file path taken from the request"
      ~cwe:22 ~severity:Rule.High
      ~pattern:{|send_file\(\s*request\.|}
      ~note:"Use send_from_directory with a fixed base directory." ();
    r ~id:"PIT-067" ~title:"Mass assignment from request payload"
      ~cwe:915 ~severity:Rule.Medium
      ~pattern:{|\(\s*\*\*request\.(?:form|json|args)\b|}
      ~note:"Copy only an explicit allowlist of fields from the request." ();
    r ~id:"PIT-068" ~title:"Admin route without authentication decorator"
      ~cwe:306 ~severity:Rule.High
      ~pattern:{|(@app\.route\(["']/admin[^)\n]*\)\s*\n)(def\s+\w+)|}
      ~suppress:{|login_required|}
      ~fix:(Rule.Replace_template "$1@login_required\n$2")
      ~imports:[ "from flask_login import login_required" ]
      ~note:"Protect administrative routes with an authentication check." ();
    r ~id:"PIT-069" ~title:"Authorization enforced with assert"
      ~cwe:703 ~severity:Rule.Medium
      ~pattern:{|assert\s+[\w.]*(?:user|auth|admin|logged|permission)|}
      ~note:
        "Asserts vanish under python -O; raise an explicit error instead." ();
  ]

let rules () = Lazy.force compiled

type t = { start : int; stop : int; repl : string }

let delta e = String.length e.repl - (e.stop - e.start)

let newlines ?(start = 0) ?stop s =
  let stop = match stop with Some j -> j | None -> String.length s in
  let count = ref 0 in
  for i = start to stop - 1 do
    if String.unsafe_get s i = '\n' then incr count
  done;
  !count

let newline_delta_in source e =
  newlines e.repl - newlines ~start:e.start ~stop:e.stop source

let newline_delta e = newlines e.repl

let valid source edits =
  let len = String.length source in
  let rec go pos = function
    | [] -> true
    | e :: rest ->
      e.start >= pos && e.stop >= e.start && e.stop <= len && go e.stop rest
  in
  go 0 edits

(* The volume pushed through edit buffers: old-text bytes copied plus
   replacement bytes written.  One of the incremental pipeline's three
   headline telemetry series (with dirty-region fraction and
   reused-vs-recomputed findings). *)
let bytes_moved_counter = Telemetry.Counter.make "edit_bytes_moved_total"

let apply source edits =
  if edits = [] then source
  else begin
    let len = String.length source in
    let out =
      Buffer.create (len + List.fold_left (fun acc e -> acc + delta e) 0 edits)
    in
    let pos =
      List.fold_left
        (fun pos e ->
          Buffer.add_substring out source pos (e.start - pos);
          Buffer.add_string out e.repl;
          e.stop)
        0 edits
    in
    Buffer.add_substring out source pos (len - pos);
    Telemetry.Counter.incr bytes_moved_counter ~by:(Buffer.length out);
    Buffer.contents out
  end

let map_offset edits o =
  let rec go shift = function
    | [] -> o + shift
    | e :: rest -> if e.stop <= o then go (shift + delta e) rest else o + shift
  in
  go 0 edits

let map_offset_left edits o =
  let rec go shift = function
    | [] -> o + shift
    | e :: rest ->
      if e.stop < o || (e.stop = o && e.start < e.stop) then
        go (shift + delta e) rest
      else o + shift
  in
  go 0 edits

let line_delta_before source edits o =
  let rec go shift = function
    | [] -> shift
    | e :: rest ->
      if e.stop <= o then go (shift + newline_delta_in source e) rest else shift
  in
  go 0 edits

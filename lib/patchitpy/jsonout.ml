let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape_string s ^ "\""

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let finding_json (f : Engine.finding) =
  let r = f.Engine.rule in
  obj
    [
      ("rule", str r.Rule.id);
      ("title", str r.Rule.title);
      ("cwe", string_of_int r.Rule.cwe);
      ("cweLabel", str (Cwe.label r.Rule.cwe));
      ( "owasp",
        match Rule.owasp r with
        | Some c -> str (Owasp.short c)
        | None -> "null" );
      ("severity", str (Rule.severity_to_string r.Rule.severity));
      ("line", string_of_int f.Engine.line);
      ("column", string_of_int f.Engine.column);
      ("snippet", str f.Engine.snippet);
      ("fixable", if Rule.fixable r then "true" else "false");
      ("advice", str r.Rule.note);
    ]

let warning_json = function
  | Scanner.Budget_exhausted rule ->
    obj [ ("type", str "budgetExhausted"); ("rule", str rule) ]

let findings_to_json ?(warnings = []) ~file findings =
  obj
    [
      ("file", str file);
      ("findings", arr (List.map finding_json findings));
      ("warnings", arr (List.map warning_json warnings));
      ( "summary",
        obj
          [
            ("total", string_of_int (List.length findings));
            ( "fixable",
              string_of_int
                (List.length
                   (List.filter
                      (fun (f : Engine.finding) -> Rule.fixable f.Engine.rule)
                      findings)) );
            ( "cwes",
              arr
                (List.map string_of_int (Engine.distinct_cwes findings)) );
          ] );
    ]

let patch_to_json ~file (r : Patcher.result) =
  obj
    [
      ("file", str file);
      ("changed", if Patcher.changed r then "true" else "false");
      ("patched", str r.Patcher.patched);
      ( "edits",
        arr
          (List.map
             (fun (a : Patcher.application) ->
               obj
                 [
                   ("rule", str a.Patcher.rule.Rule.id);
                   ("line", string_of_int a.Patcher.line);
                   ("before", str a.Patcher.before);
                   ("after", str a.Patcher.after);
                 ])
             r.Patcher.applications) );
      ("importsAdded", arr (List.map str r.Patcher.imports_added));
      ("remaining", arr (List.map finding_json r.Patcher.remaining));
    ]

(* --- SARIF 2.1.0 ---------------------------------------------------------- *)

let sarif_level (severity : Rule.severity) =
  match severity with
  | Rule.Low -> "note"
  | Rule.Medium -> "warning"
  | Rule.High | Rule.Critical -> "error"

let sarif_rule (r : Rule.t) =
  obj
    [
      ("id", str r.Rule.id);
      ("name", str r.Rule.title);
      ("shortDescription", obj [ ("text", str r.Rule.title) ]);
      ("fullDescription", obj [ ("text", str r.Rule.note) ]);
      ( "properties",
        obj
          [
            ("cwe", str (Cwe.label r.Rule.cwe));
            ( "owasp",
              match Rule.owasp r with
              | Some c -> str (Owasp.name c)
              | None -> "null" );
            ("fixable", if Rule.fixable r then "true" else "false");
          ] );
      ("defaultConfiguration", obj [ ("level", str (sarif_level r.Rule.severity)) ]);
    ]

let sarif_result file (f : Engine.finding) =
  obj
    [
      ("ruleId", str f.Engine.rule.Rule.id);
      ("level", str (sarif_level f.Engine.rule.Rule.severity));
      ( "message",
        obj
          [
            ( "text",
              str
                (Printf.sprintf "%s (%s)" f.Engine.rule.Rule.title
                   (Cwe.label f.Engine.rule.Rule.cwe)) );
          ] );
      ( "locations",
        arr
          [
            obj
              [
                ( "physicalLocation",
                  obj
                    [
                      ( "artifactLocation",
                        obj [ ("uri", str file) ] );
                      ( "region",
                        obj
                          [
                            ("startLine", string_of_int f.Engine.line);
                            ("startColumn", string_of_int (f.Engine.column + 1));
                            ("snippet", obj [ ("text", str f.Engine.snippet) ]);
                          ] );
                    ] );
              ];
          ] );
    ]

let to_sarif ?(rules = (Catalog.all ())) scans =
  let results =
    List.concat_map
      (fun (file, findings) -> List.map (sarif_result file) findings)
      scans
  in
  obj
    [
      ("version", str "2.1.0");
      ( "$schema",
        str "https://json.schemastore.org/sarif-2.1.0.json" );
      ( "runs",
        arr
          [
            obj
              [
                ( "tool",
                  obj
                    [
                      ( "driver",
                        obj
                          [
                            ("name", str "PatchitPy");
                            ("version", str "1.0.0");
                            ("informationUri",
                             str "https://github.com/dessertlab/PatchitPy");
                            ("rules", arr (List.map sarif_rule rules));
                          ] );
                    ] );
                ("results", arr results);
              ];
          ] );
    ]

(** Aho–Corasick multi-pattern substring search.

    Compiles a set of literal byte strings into a single automaton; one
    pass over a subject then reports which patterns occur in it.  This
    is the shared prefilter behind {!Patchitpy.Scanner}: the catalog's
    required literals are matched in O(|subject|) total instead of one
    naive substring scan per (rule, literal) pair.

    Patterns are plain byte strings — no encoding assumptions, so any
    UTF-8 (or binary) content works unchanged. *)

type t
(** A compiled automaton.  Immutable after {!build}: safe to share
    across domains. *)

val build : string list -> t
(** [build patterns] compiles the automaton.  Patterns keep their list
    index as identity; duplicates are allowed (each index is reported).
    The empty string occurs in every subject, including [""]. *)

val pattern_count : t -> int
(** Number of patterns the automaton was built from. *)

val search : t -> string -> int list
(** [search t subject] is the sorted list of distinct pattern indices
    occurring at least once in [subject].  Overlapping and nested
    occurrences are all found (e.g. ["he"] and ["she"] both hit in
    ["she"]). *)

val search_mask : t -> string -> bool array
(** [search_mask t subject] is an array of length {!pattern_count}
    where slot [i] tells whether pattern [i] occurs in [subject] —
    the allocation-friendly variant of {!search} for hot paths. *)

val mem : t -> string -> bool
(** [mem t subject] is [true] iff any pattern occurs in [subject].
    Short-circuits on the first hit. *)

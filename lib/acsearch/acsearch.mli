(** Aho–Corasick multi-pattern substring search.

    Compiles a set of literal byte strings into a single automaton; one
    pass over a subject then reports which patterns occur in it.  This
    is the shared prefilter behind {!Patchitpy.Scanner}: the catalog's
    required literals are matched in O(|subject|) total instead of one
    naive substring scan per (rule, literal) pair.

    Patterns are plain byte strings — no encoding assumptions, so any
    UTF-8 (or binary) content works unchanged. *)

type t
(** A compiled automaton.  Immutable after {!build}: safe to share
    across domains. *)

val build : string list -> t
(** [build patterns] compiles the automaton.  Patterns keep their list
    index as identity; duplicates are allowed (each index is reported).
    The empty string occurs in every subject, including [""]. *)

val pattern_count : t -> int
(** Number of patterns the automaton was built from. *)

val search : t -> string -> int list
(** [search t subject] is the sorted list of distinct pattern indices
    occurring at least once in [subject].  Overlapping and nested
    occurrences are all found (e.g. ["he"] and ["she"] both hit in
    ["she"]). *)

val search_mask : t -> string -> bool array
(** [search_mask t subject] is an array of length {!pattern_count}
    where slot [i] tells whether pattern [i] occurs in [subject] —
    the allocation-friendly variant of {!search} for hot paths. *)

val search_mask_range : t -> string -> pos:int -> stop:int -> bool array
(** [search_mask_range t subject ~pos ~stop] is {!search_mask}
    restricted to occurrences lying entirely within
    [subject.[pos..stop-1]] — the dirty-region form used by incremental
    re-scanning, which only pays for the bytes a patch round touched.
    The automaton starts from its root at [pos], so occurrences
    straddling the window boundary are not reported; callers widen the
    window so that every occurrence they care about is interior. *)

val search_mask_into : t -> bool array -> string -> pos:int -> stop:int -> unit
(** {!search_mask_range} accumulating into an existing mask (slots for
    patterns seen in the window are set; others are left untouched) —
    lets one mask collect hits across several dirty regions without
    re-allocating. *)

val search_hits_into :
  t -> string -> pos:int -> stop:int -> (int -> int -> unit) -> unit
(** [search_hits_into t subject ~pos ~stop f] calls [f pattern_index
    end_offset] for every occurrence of a pattern lying within
    [subject.[pos..stop-1]], where [end_offset] is the offset of the
    occurrence's last byte.  Same boundary caveat as
    {!search_mask_range}.  Incremental re-scanning uses the positions to
    measure how far each candidate literal sits from the dirty lines —
    a rule whose literals are all far away cannot gain a match. *)

val mem : t -> string -> bool
(** [mem t subject] is [true] iff any pattern occurs in [subject].
    Short-circuits on the first hit. *)

(** {1 Binary codec}

    Serialization for rule packs.  The wire form is the pattern trie —
    a few kilobytes of (byte, child) edges — not the expanded
    transition table; {!read} re-runs the same breadth-first squash
    {!build} uses, so loading costs one table allocation and a blit
    pass.  {!read} validates that the edges form a tree rooted at
    state 0 and bounds-checks every index, raising {!Binio.Corrupt} /
    {!Binio.Truncated} on malformed input; beyond that any tree is a
    valid automaton, and the search loops mask every fetched state id
    into the table's range — adversarial bytes can mis-transition but
    never read out of bounds.  Content integrity is the containing
    pack's checksum's job. *)

val write : Buffer.t -> t -> unit
(** Appends the serialized automaton. *)

val read : Binio.r -> t
(** Decodes an automaton written by {!write}.
    @raise Binio.Corrupt on structurally invalid input.
    @raise Binio.Truncated if the input ends early. *)

(* Aho–Corasick, compiled to a dense class-indexed DFA.

   Build is three phases: trie insertion, byte-class derivation, and a
   breadth-first squash of goto/fail into a single transition table
   (delta) so the scan loop is one class lookup and one table read per
   input byte.  Output sets are merged down failure chains at build
   time, which keeps the scan loop free of chain walking.

   Byte classes: only bytes that appear in some pattern can move the
   automaton off the failure path, and every other byte behaves
   identically in every state (no edge anywhere is labelled with it, so
   goto falls through to the root).  The rule catalog's literals use
   ~60 distinct bytes, so mapping bytes through a 256-entry class table
   shrinks each state's row from 256 entries to the next power of two
   above the class count — a quarter of the memory, which matters
   twice: the table stays closer to L1 during scans, and a rule-pack
   load allocates a quarter as much (large allocations dominate pack
   cold-start cost).

   The table has two representations.  The common one (Dense16) is a
   flat Bytes.t of 16-bit state ids, [1 lsl cshift] bytes per state,
   padded to a power-of-two state count:
   - build squashes a state by blitting its failure state's whole row
     and overwriting the real edges, instead of deciding goto-vs-fail
     per class — an order of magnitude faster;
   - the scan loop masks every fetched state id to the padded range,
     class offsets are premultiplied and always inside a row, and the
     out table spans the whole masked range, so even a corrupt table
     can only produce wrong transitions, never an out-of-bounds access;
   - half the memory traffic of boxed int rows.
   Automata past 65536 states (never the rule catalog; conceivable from
   a giant user rules file) fall back to byte-indexed int-array rows
   (Rows).

   The trie ([kids], [base_out]) is kept on the side: it is the
   canonical form the binary codec ships — a few kilobytes instead of
   the expanded table — and [construct] rebuilds the dense form from it
   on pack load with the same blit pass build uses. *)

type rep =
  | Dense16 of {
      delta : Bytes.t;
          (* row [s] is [delta[s lsl cshift .. (s+1) lsl cshift - 1]],
             native-endian u16 entries, one per byte class *)
      smask : int;  (* padded state count - 1 *)
      clsoff : int array;
          (* byte -> premultiplied class offset (class * 2), 256
             entries, each < [1 lsl cshift] *)
      cshift : int;  (* log2 of the row size in bytes *)
    }
  | Rows of int array array  (* state -> byte -> state *)

(* The trie in flattened form: state [s]'s edges are slots
   [kid_start.(s) .. kid_start.(s+1) - 1] of [kid_byte]/[kid_child],
   its unmerged pattern ids the same slots of [out_start]/[out_id].
   Flat arrays rather than per-state lists because the codec parses
   this with tight loops (a list-of-pairs form spent half of pack load
   on cons cells and closures). *)
type trie = {
  nstates : int;
  kid_start : int array;  (* length nstates + 1 *)
  kid_byte : string;  (* edge labels, one byte per edge *)
  kid_child : int array;
  out_start : int array;  (* length nstates + 1 *)
  out_id : int array;
}

type t = {
  rep : rep;
  out : int array array;
      (* state -> pattern indices ending here (merged down failure
         chains); length = padded state count, so any masked state id
         indexes safely *)
  npat : int;
  trie : trie;  (* retained: it is the binary codec's wire form *)
}

let pattern_count t = t.npat

(* Unaligned native-endian 16-bit load without a bounds check: every
   index is [(masked state) lsl cshift lor clsoff.(byte)], in range by
   construction. *)
external get16u : Bytes.t -> int -> int = "%caml_bytes_get16u"

let max_dense_states = 65536

let next_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

(* Squashes a trie into the scan representation.  Shared by [build] and
   the codec's [read]: the trie is both the build intermediate and the
   wire form.  The trie must be a tree rooted at state 0 (readers
   validate this). *)
let construct ~npat (trie : trie) =
  let n = trie.nstates in
  let { kid_start; kid_byte; kid_child; out_start; out_id; _ } = trie in
  let fail = Array.make n 0 in
  let out = Array.make n [] in
  for s = 0 to n - 1 do
    let acc = ref [] in
    for k = out_start.(s + 1) - 1 downto out_start.(s) do
      acc := out_id.(k) :: !acc
    done;
    out.(s) <- !acc
  done;
  (* The traversal order: parents strictly before children (any such
     order works — a child's failure state is always shallower than the
     child, so its row is final by the time the child is squashed).  A
     plain array cursor, not a Queue: this runs on the pack cold-start
     path and a Queue allocates per push. *)
  let order = Array.make n 0 in
  let qtail = ref 0 in
  let push s =
    order.(!qtail) <- s;
    incr qtail
  in
  if n <= max_dense_states then begin
    (* Byte classes: class 0 is every byte labelling no edge (all such
       bytes transition identically), each edge byte gets its own
       class. *)
    let clsoff = Array.make 256 0 in
    let nclasses = ref 1 in
    String.iter
      (fun ch ->
        let c = Char.code ch in
        if clsoff.(c) = 0 then begin
          clsoff.(c) <- !nclasses * 2;
          incr nclasses
        end)
      kid_byte;
    let row_entries = next_pow2 !nclasses in
    let cshift =
      let s = ref 1 in
      while 1 lsl !s < row_entries * 2 do
        incr s
      done;
      !s
    in
    let rows = next_pow2 n in
    let row_bytes = 1 lsl cshift in
    (* [Bytes.create], not [Bytes.make]: every real row other than the
       root is fully overwritten by its failure-row blit, so only the
       root row and the padding rows need explicit zeroing (missing
       root edges and padding must point at the root — padding rows are
       reachable only through a corrupt table, but must still be
       deterministic).  Skipping the full zero fill matters on the pack
       load path. *)
    let delta = Bytes.create (rows * row_bytes) in
    Bytes.fill delta 0 row_bytes '\000';
    Bytes.fill delta (n * row_bytes) ((rows - n) * row_bytes) '\000';
    let set16 st c v =
      Bytes.set_uint16_ne delta ((st lsl cshift) lor clsoff.(c)) v
    in
    let get16 st c = Bytes.get_uint16_ne delta ((st lsl cshift) lor clsoff.(c)) in
    for k = kid_start.(0) to kid_start.(1) - 1 do
      let ch = kid_child.(k) in
      set16 0 (Char.code kid_byte.[k]) ch;
      push ch
    done;
    (* A state's row is its failure state's row (already squashed,
       since failure states are strictly shallower) overwritten with
       its real edges; a child's failure is what the failure row held
       at the edge byte before the overwrite. *)
    let qhead = ref 0 in
    while !qhead < !qtail do
      let s = order.(!qhead) in
      incr qhead;
      (match out.(fail.(s)) with
      | [] -> ()
      | inherited -> out.(s) <- out.(s) @ inherited);
      Bytes.blit delta (fail.(s) lsl cshift) delta (s lsl cshift) row_bytes;
      for k = kid_start.(s) to kid_start.(s + 1) - 1 do
        let c = Char.code kid_byte.[k] in
        let ch = kid_child.(k) in
        fail.(ch) <- get16 fail.(s) c;
        set16 s c ch;
        push ch
      done
    done;
    let out_arr = Array.make rows [||] in
    for s = 0 to n - 1 do
      match out.(s) with
      | [] -> ()
      | ids -> out_arr.(s) <- Array.of_list (List.sort_uniq compare ids)
    done;
    {
      rep = Dense16 { delta; smask = rows - 1; clsoff; cshift };
      out = out_arr;
      npat;
      trie;
    }
  end
  else begin
    let delta = Array.make n [||] in
    delta.(0) <- Array.make 256 0;
    for k = kid_start.(0) to kid_start.(1) - 1 do
      let ch = kid_child.(k) in
      delta.(0).(Char.code kid_byte.[k]) <- ch;
      push ch
    done;
    let qhead = ref 0 in
    while !qhead < !qtail do
      let s = order.(!qhead) in
      incr qhead;
      out.(s) <- out.(s) @ out.(fail.(s));
      delta.(s) <- Array.copy delta.(fail.(s));
      for k = kid_start.(s) to kid_start.(s + 1) - 1 do
        let c = Char.code kid_byte.[k] in
        let ch = kid_child.(k) in
        fail.(ch) <- delta.(fail.(s)).(c);
        delta.(s).(c) <- ch;
        push ch
      done
    done;
    {
      rep = Rows delta;
      out = Array.map (fun ids -> Array.of_list (List.sort_uniq compare ids)) out;
      npat;
      trie;
    }
  end

let build patterns =
  let npat = List.length patterns in
  (* The trie can never exceed one state per pattern byte plus the
     root.  Edges live in small per-state assoc lists during insertion
     (fan-out is tiny in practice), then flatten into the [trie]
     arrays. *)
  let cap =
    1 + List.fold_left (fun acc p -> acc + String.length p) 0 patterns
  in
  let kids : (int * int) list array = Array.make cap [] in
  let bout : int list array = Array.make cap [] in
  let nstates = ref 1 in
  List.iteri
    (fun idx p ->
      let st = ref 0 in
      String.iter
        (fun ch ->
          let c = Char.code ch in
          match List.assoc_opt c kids.(!st) with
          | Some nxt -> st := nxt
          | None ->
            let fresh = !nstates in
            incr nstates;
            kids.(!st) <- (c, fresh) :: kids.(!st);
            st := fresh)
        p;
      bout.(!st) <- idx :: bout.(!st))
    patterns;
  let n = !nstates in
  let kid_start = Array.make (n + 1) 0 in
  let out_start = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    kid_start.(s + 1) <- kid_start.(s) + List.length kids.(s);
    out_start.(s + 1) <- out_start.(s) + List.length bout.(s)
  done;
  let nedges = kid_start.(n) in
  let kid_byte = Bytes.create nedges in
  let kid_child = Array.make nedges 0 in
  let out_id = Array.make out_start.(n) 0 in
  for s = 0 to n - 1 do
    let k = ref kid_start.(s) in
    List.iter
      (fun (c, child) ->
        Bytes.set kid_byte !k (Char.chr c);
        kid_child.(!k) <- child;
        incr k)
      kids.(s);
    let k = ref out_start.(s) in
    List.iter
      (fun id ->
        out_id.(!k) <- id;
        incr k)
      bout.(s)
  done;
  construct ~npat
    {
      nstates = n;
      kid_start;
      kid_byte = Bytes.unsafe_to_string kid_byte;
      kid_child;
      out_start;
      out_id;
    }

(* The scan loops avoid two per-byte costs: bounds checks on the delta
   lookup (masked ids, premultiplied in-row class offsets), and the
   former [<> [||]] emptiness test, which compiled to a polymorphic
   structural comparison per input byte — [Array.length] is one load. *)

let search_mask_into t mask subject ~pos ~stop =
  let out = t.out in
  let mark st = Array.iter (fun id -> mask.(id) <- true) (Array.unsafe_get out st) in
  mark 0 (* empty patterns end at the root *);
  match t.rep with
  | Dense16 { delta; smask; clsoff; cshift } ->
    let st = ref 0 in
    for i = pos to stop - 1 do
      st :=
        get16u delta
          ((!st lsl cshift)
          lor Array.unsafe_get clsoff (Char.code (String.unsafe_get subject i)))
        land smask;
      if Array.length (Array.unsafe_get out !st) > 0 then mark !st
    done
  | Rows delta ->
    let st = ref 0 in
    for i = pos to stop - 1 do
      st :=
        Array.unsafe_get
          (Array.unsafe_get delta !st)
          (Char.code (String.unsafe_get subject i));
      if Array.length (Array.unsafe_get out !st) > 0 then mark !st
    done

let search_hits_into t subject ~pos ~stop f =
  Array.iter (fun id -> f id pos) t.out.(0) (* empty patterns end at the root *);
  let out = t.out in
  match t.rep with
  | Dense16 { delta; smask; clsoff; cshift } ->
    let st = ref 0 in
    for i = pos to stop - 1 do
      st :=
        get16u delta
          ((!st lsl cshift)
          lor Array.unsafe_get clsoff (Char.code (String.unsafe_get subject i)))
        land smask;
      let outs = Array.unsafe_get out !st in
      if Array.length outs > 0 then Array.iter (fun id -> f id i) outs
    done
  | Rows delta ->
    let st = ref 0 in
    for i = pos to stop - 1 do
      st :=
        Array.unsafe_get
          (Array.unsafe_get delta !st)
          (Char.code (String.unsafe_get subject i));
      let outs = Array.unsafe_get out !st in
      if Array.length outs > 0 then Array.iter (fun id -> f id i) outs
    done

let search_mask_range t subject ~pos ~stop =
  let mask = Array.make t.npat false in
  search_mask_into t mask subject ~pos ~stop;
  mask

let search_mask t subject =
  search_mask_range t subject ~pos:0 ~stop:(String.length subject)

let search t subject =
  let mask = search_mask t subject in
  let hits = ref [] in
  for i = t.npat - 1 downto 0 do
    if mask.(i) then hits := i :: !hits
  done;
  !hits

let mem t subject =
  if t.npat = 0 then false
  else if t.out.(0) <> [||] then true
  else begin
    let out = t.out in
    let len = String.length subject in
    match t.rep with
    | Dense16 { delta; smask; clsoff; cshift } ->
      let st = ref 0 and i = ref 0 and hit = ref false in
      while (not !hit) && !i < len do
        st :=
          get16u delta
            ((!st lsl cshift)
            lor Array.unsafe_get clsoff (Char.code (String.unsafe_get subject !i))
            )
          land smask;
        if Array.length (Array.unsafe_get out !st) > 0 then hit := true;
        incr i
      done;
      !hit
    | Rows delta ->
      let st = ref 0 and i = ref 0 and hit = ref false in
      while (not !hit) && !i < len do
        st :=
          Array.unsafe_get
            (Array.unsafe_get delta !st)
            (Char.code (String.unsafe_get subject !i));
        if Array.length (Array.unsafe_get out !st) > 0 then hit := true;
        incr i
      done;
      !hit
  end

(* --- codec -----------------------------------------------------------------

   The wire form is the trie, not the expanded table: a few kilobytes
   of (byte, child) edges plus per-state pattern ids.  [read] rebuilds
   the dense table with the same blit pass [build] uses, which is both
   far smaller on disk (the expanded table is hundreds of kilobytes)
   and faster to load than a verbatim table would be — large
   allocations, not decoding work, dominate pack load time, and the
   trie form allocates one table instead of shipping one through the
   file, the checksum and a copy.

   Validation here is structural: the edge list must form a tree rooted
   at state 0 (each state a child at most once, never the root), so the
   squash BFS terminates and visits each state at most once.  Content
   cannot be validated — any tree is a valid automaton — which is fine:
   the scan loops are memory-safe for arbitrary table content, and rule
   packs checksum their payload, which is what actually rejects
   corruption; see Rulepack. *)

(* Caps a wire-declared pattern count: out ids index scanner-side
   arrays sized [npat], so the count must stay allocation-sane. *)
let max_npat = 1 lsl 20
let max_states = 1 lsl 22

let write buf t =
  let { nstates; kid_start; kid_byte; kid_child; out_start; out_id } =
    t.trie
  in
  Binio.w_u32 buf t.npat;
  Binio.w_u32 buf nstates;
  Binio.w_u32 buf (Array.length kid_child);
  for s = 0 to nstates - 1 do
    Binio.w_u16 buf (kid_start.(s + 1) - kid_start.(s))
  done;
  Buffer.add_string buf kid_byte;
  Array.iter (Binio.w_u32 buf) kid_child;
  Binio.w_u32 buf (Array.length out_id);
  for s = 0 to nstates - 1 do
    Binio.w_u32 buf (out_start.(s + 1) - out_start.(s))
  done;
  Array.iter (Binio.w_u32 buf) out_id

let read r =
  let npat = Binio.r_u32 r in
  if npat < 0 || npat > max_npat then
    raise (Binio.Corrupt (Printf.sprintf "pattern count %d out of range" npat));
  let nstates = Binio.r_u32 r in
  if nstates < 1 || nstates > max_states then
    raise (Binio.Corrupt (Printf.sprintf "state count %d out of range" nstates));
  let nedges = Binio.r_count ~limit:(256 * max_states) r in
  let kid_start = Array.make (nstates + 1) 0 in
  for s = 0 to nstates - 1 do
    let k = Binio.r_u16 r in
    if k > 256 then raise (Binio.Corrupt "trie fan-out over 256");
    kid_start.(s + 1) <- kid_start.(s) + k
  done;
  if kid_start.(nstates) <> nedges then
    raise (Binio.Corrupt "trie edge counts do not sum to the edge total");
  let kid_byte = Binio.r_raw r nedges in
  let seen = Array.make nstates false in
  let kid_child =
    Array.init nedges (fun _ ->
        let child = Binio.r_u32 r in
        if child < 1 || child >= nstates then
          raise (Binio.Corrupt "trie child out of range");
        if seen.(child) then raise (Binio.Corrupt "trie child repeated");
        seen.(child) <- true;
        child)
  in
  let nout = Binio.r_count ~limit:(256 * max_states) r in
  let out_start = Array.make (nstates + 1) 0 in
  for s = 0 to nstates - 1 do
    let k = Binio.r_count ~limit:max_npat r in
    out_start.(s + 1) <- out_start.(s) + k
  done;
  if out_start.(nstates) <> nout then
    raise (Binio.Corrupt "output counts do not sum to the output total");
  let out_id =
    Array.init nout (fun _ ->
        let id = Binio.r_u32 r in
        if id < 0 || id >= npat then
          raise (Binio.Corrupt "pattern index out of range");
        id)
  in
  construct ~npat { nstates; kid_start; kid_byte; kid_child; out_start; out_id }

(* Aho–Corasick, compiled to a dense byte-indexed DFA.

   Build is three phases: trie insertion, breadth-first failure-link
   computation, and goto/fail squashing into a single transition table
   (delta) so the scan loop is one array read per input byte.  Output
   sets are merged down failure chains at build time, which keeps the
   scan loop free of chain walking. *)

type t = {
  delta : int array array;  (* state -> byte -> state *)
  out : int array array;  (* state -> pattern indices ending here (merged) *)
  npat : int;
}

let pattern_count t = t.npat

(* Growable trie used only during [build]. *)
type builder = {
  mutable next : int array array;  (* -1 = no edge *)
  mutable bout : int list array;
  mutable nstates : int;
}

let new_state b =
  if b.nstates = Array.length b.next then begin
    let cap = max 16 (2 * b.nstates) in
    let next = Array.make cap [||] in
    Array.blit b.next 0 next 0 b.nstates;
    b.next <- next;
    let bout = Array.make cap [] in
    Array.blit b.bout 0 bout 0 b.nstates;
    b.bout <- bout
  end;
  b.next.(b.nstates) <- Array.make 256 (-1);
  b.nstates <- b.nstates + 1;
  b.nstates - 1

let insert b idx pattern =
  let st = ref 0 in
  String.iter
    (fun c ->
      let c = Char.code c in
      let nxt = b.next.(!st).(c) in
      if nxt >= 0 then st := nxt
      else begin
        let fresh = new_state b in
        b.next.(!st).(c) <- fresh;
        st := fresh
      end)
    pattern;
  b.bout.(!st) <- idx :: b.bout.(!st)

let build patterns =
  (* The trie can never exceed one state per pattern byte plus the root,
     so preallocating that bound makes every growth copy in [new_state]
     dead code on this path. *)
  let cap =
    1 + List.fold_left (fun acc p -> acc + String.length p) 0 patterns
  in
  let b =
    { next = Array.make cap [||]; bout = Array.make cap []; nstates = 0 }
  in
  ignore (new_state b) (* root *);
  List.iteri (insert b) patterns;
  let n = b.nstates in
  let fail = Array.make n 0 in
  let out = Array.make n [] in
  for s = 0 to n - 1 do
    out.(s) <- b.bout.(s)
  done;
  (* BFS from the root: fail links, merged outputs, then squash the
     missing edges so delta is total. *)
  let queue = Queue.create () in
  for c = 0 to 255 do
    let s = b.next.(0).(c) in
    if s < 0 then b.next.(0).(c) <- 0 else Queue.add s queue
  done;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    out.(s) <- out.(s) @ out.(fail.(s));
    for c = 0 to 255 do
      let child = b.next.(s).(c) in
      if child < 0 then b.next.(s).(c) <- b.next.(fail.(s)).(c)
      else begin
        fail.(child) <- b.next.(fail.(s)).(c);
        Queue.add child queue
      end
    done
  done;
  {
    delta = Array.sub b.next 0 n;
    out = Array.map (fun ids -> Array.of_list (List.sort_uniq compare ids)) out;
    npat = List.length patterns;
  }

(* The scan loops avoid two per-byte costs: bounds checks on the nested
   delta lookup (state ids and bytes are in range by construction), and
   the former [<> [||]] emptiness test, which compiled to a polymorphic
   structural comparison per input byte — [Array.length] is one load. *)

let search_mask_into t mask subject ~pos ~stop =
  let mark st = Array.iter (fun id -> mask.(id) <- true) t.out.(st) in
  let delta = t.delta and out = t.out in
  let st = ref 0 in
  mark 0 (* empty patterns end at the root *);
  for i = pos to stop - 1 do
    st :=
      Array.unsafe_get
        (Array.unsafe_get delta !st)
        (Char.code (String.unsafe_get subject i));
    if Array.length (Array.unsafe_get out !st) > 0 then mark !st
  done

let search_hits_into t subject ~pos ~stop f =
  Array.iter (fun id -> f id pos) t.out.(0) (* empty patterns end at the root *);
  let delta = t.delta and out = t.out in
  let st = ref 0 in
  for i = pos to stop - 1 do
    st :=
      Array.unsafe_get
        (Array.unsafe_get delta !st)
        (Char.code (String.unsafe_get subject i));
    let outs = Array.unsafe_get out !st in
    if Array.length outs > 0 then Array.iter (fun id -> f id i) outs
  done

let search_mask_range t subject ~pos ~stop =
  let mask = Array.make t.npat false in
  search_mask_into t mask subject ~pos ~stop;
  mask

let search_mask t subject =
  search_mask_range t subject ~pos:0 ~stop:(String.length subject)

let search t subject =
  let mask = search_mask t subject in
  let hits = ref [] in
  for i = t.npat - 1 downto 0 do
    if mask.(i) then hits := i :: !hits
  done;
  !hits

let mem t subject =
  if t.npat = 0 then false
  else if t.out.(0) <> [||] then true
  else begin
    let delta = t.delta and out = t.out in
    let st = ref 0 and i = ref 0 and len = String.length subject in
    let hit = ref false in
    while (not !hit) && !i < len do
      st :=
        Array.unsafe_get
          (Array.unsafe_get delta !st)
          (Char.code (String.unsafe_get subject !i));
      if Array.length (Array.unsafe_get out !st) > 0 then hit := true;
      incr i
    done;
    !hit
  end

/* XXH64 (xxHash, public-domain algorithm) over an OCaml string slice.
 *
 * Rule packs checksum their whole payload on every load, so the hash
 * sits on the cold-start critical path: a few hundred kilobytes must
 * verify in tens of microseconds.  Pure-OCaml 16-bit-word loops top
 * out around 3 GB/s without flambda; this stub runs at memory speed.
 *
 * Reads are little-endian per the XXH64 spec (memcpy + bswap on
 * big-endian hosts) so packs verify identically across endianness.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <stdint.h>
#include <string.h>

#define P1 11400714785074694791ULL
#define P2 14029467366897019727ULL
#define P3 1609587929392839161ULL
#define P4 9650029242287828579ULL
#define P5 2870177450012600261ULL

static inline uint64_t rotl64(uint64_t x, int r)
{
  return (x << r) | (x >> (64 - r));
}

static inline uint64_t read64le(const unsigned char *p)
{
  uint64_t v;
  memcpy(&v, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

static inline uint32_t read32le(const unsigned char *p)
{
  uint32_t v;
  memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

static inline uint64_t xxh_round(uint64_t acc, uint64_t input)
{
  acc += input * P2;
  acc = rotl64(acc, 31);
  return acc * P1;
}

static inline uint64_t xxh_merge(uint64_t acc, uint64_t val)
{
  acc ^= xxh_round(0, val);
  return acc * P1 + P4;
}

static uint64_t xxh64(const unsigned char *p, size_t len)
{
  const unsigned char *end = p + len;
  uint64_t h;

  if (len >= 32) {
    const unsigned char *limit = end - 32;
    uint64_t v1 = P1 + P2;
    uint64_t v2 = P2;
    uint64_t v3 = 0;
    uint64_t v4 = 0 - P1;
    do {
      v1 = xxh_round(v1, read64le(p)); p += 8;
      v2 = xxh_round(v2, read64le(p)); p += 8;
      v3 = xxh_round(v3, read64le(p)); p += 8;
      v4 = xxh_round(v4, read64le(p)); p += 8;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xxh_merge(h, v1);
    h = xxh_merge(h, v2);
    h = xxh_merge(h, v3);
    h = xxh_merge(h, v4);
  } else {
    h = P5;
  }

  h += (uint64_t)len;

  while (p + 8 <= end) {
    h ^= xxh_round(0, read64le(p));
    h = rotl64(h, 27) * P1 + P4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= (uint64_t)read32le(p) * P1;
    h = rotl64(h, 23) * P2 + P3;
    p += 4;
  }
  while (p < end) {
    h ^= (uint64_t)(*p) * P5;
    h = rotl64(h, 11) * P1;
    p++;
  }

  h ^= h >> 33;
  h *= P2;
  h ^= h >> 29;
  h *= P3;
  h ^= h >> 32;
  return h;
}

CAMLprim value binio_xxh64_stub(value vs, value vpos, value vlen)
{
  CAMLparam1(vs);
  const unsigned char *base = (const unsigned char *)String_val(vs);
  uint64_t h = xxh64(base + Long_val(vpos), (size_t)Long_val(vlen));
  CAMLreturn(caml_copy_int64((int64_t)h));
}

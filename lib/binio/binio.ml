(* Little-endian binary primitives shared by the compiled-artifact
   codecs (Acsearch, Rx, Rulepack).  Writers append to a Buffer; readers
   consume a string through a cursor and raise [Truncated]/[Corrupt] —
   callers wrap a whole decode in [protect] to get a result instead. *)

exception Truncated
exception Corrupt of string

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let w_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let w_u64 buf v =
  w_u32 buf (v land 0xffffffff);
  w_u32 buf ((v lsr 32) land 0xffffffff)

let w_bool buf b = w_u8 buf (if b then 1 else 0)

(* LEB128 unsigned varint: 7 value bits per byte, high bit set on all
   but the last.  The warm-table codecs write long runs of small
   non-negative ints (program counters, interned-state row values);
   varints keep those sections a third the size of fixed u16/u32. *)
let rec w_varint buf v =
  if v < 0 then invalid_arg "Binio.w_varint";
  if v < 0x80 then w_u8 buf v
  else begin
    w_u8 buf (0x80 lor (v land 0x7f));
    w_varint buf (v lsr 7)
  end

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_opt w buf = function
  | None -> w_u8 buf 0
  | Some v ->
    w_u8 buf 1;
    w buf v

let w_list w buf l =
  w_u32 buf (List.length l);
  List.iter (w buf) l

let w_array w buf a =
  w_u32 buf (Array.length a);
  Array.iter (w buf) a

type r = { s : string; mutable pos : int; stop : int }

let reader ?(pos = 0) ?stop s =
  let stop = match stop with None -> String.length s | Some e -> e in
  if pos < 0 || stop > String.length s || pos > stop then
    invalid_arg "Binio.reader";
  { s; pos; stop }

let need r n = if r.stop - r.pos < n then raise Truncated

let r_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2;
  let v = Char.code r.s.[r.pos] lor (Char.code r.s.[r.pos + 1] lsl 8) in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4;
  let v =
    Char.code r.s.[r.pos]
    lor (Char.code r.s.[r.pos + 1] lsl 8)
    lor (Char.code r.s.[r.pos + 2] lsl 16)
    lor (Char.code r.s.[r.pos + 3] lsl 24)
  in
  r.pos <- r.pos + 4;
  v

let r_u64 r =
  let lo = r_u32 r in
  let hi = r_u32 r in
  lo lor (hi lsl 32)

(* Ten 7-bit groups cover 63-bit OCaml ints; an eleventh continuation
   byte means the input is forged, not merely large. *)
let r_varint r =
  let rec go acc shift =
    if shift > 63 then raise (Corrupt "varint too long");
    let b = r_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then
      if acc < 0 then raise (Corrupt "varint overflow") else acc
    else go acc (shift + 7)
  in
  go 0 0

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> raise (Corrupt (Printf.sprintf "bad bool byte %d" v))

let r_str r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

(* Raw bytes without a length prefix (the caller knows the size). *)
let r_raw r n =
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

(* A sub-reader over the next [n] bytes, sharing the backing string —
   no copy, which matters when slicing a few hundred kilobytes of
   section payload on the pack cold-start path. *)
let r_view r n =
  need r n;
  let v = { s = r.s; pos = r.pos; stop = r.pos + n } in
  r.pos <- r.pos + n;
  v

(* A fresh cursor over another reader's remaining window.  Lazy
   decoders hold an unconsumed view and re-read it on each attempt;
   cloning the cursor keeps concurrent attempts from racing on [pos]. *)
let sub_reader v = { s = v.s; pos = v.pos; stop = v.stop }

let r_opt rd r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (rd r)
  | v -> raise (Corrupt (Printf.sprintf "bad option byte %d" v))

(* A sequence count read from the wire bounds allocation: [limit] keeps
   a forged count from provoking a giant pre-allocation before the
   elements inevitably hit [Truncated]. *)
let r_count ?(limit = 1 lsl 24) r =
  let n = r_u32 r in
  if n > limit then raise (Corrupt (Printf.sprintf "count %d exceeds limit" n));
  n

let r_list rd r =
  let n = r_count r in
  List.init n (fun _ -> rd r)

let r_array rd r =
  let n = r_count r in
  Array.init n (fun _ -> rd r)

let at_end r = r.pos = r.stop

let protect f =
  match f () with
  | v -> Ok v
  | exception Truncated -> Error "truncated input"
  | exception Corrupt msg -> Error msg

(* --- checksum --------------------------------------------------------------

   XXH64 via a C stub (binio_xxh64.c): the rule-pack loader hashes its
   whole payload on every start, so this must run at memory speed —
   pure-OCaml word loops plateau well below it without flambda. *)

external xxh64_unsafe : string -> int -> int -> int64 = "binio_xxh64_stub"

let hash64 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Binio.hash64";
  xxh64_unsafe s pos len

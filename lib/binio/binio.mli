(** Little-endian binary encode/decode primitives.

    Shared by the compiled-artifact codecs ({!Acsearch}, {!Rx},
    {!Rulepack}).  Writers append to a [Buffer.t].  Readers consume a
    string through a mutable cursor; running off the end raises
    {!Truncated} and malformed content {!Corrupt} — wrap a whole decode
    in {!protect} to turn both into a [result].  Decoders never read
    outside the reader's window, so adversarial bytes can only produce
    typed errors. *)

exception Truncated
exception Corrupt of string

val w_u8 : Buffer.t -> int -> unit
val w_u16 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_u64 : Buffer.t -> int -> unit
val w_bool : Buffer.t -> bool -> unit

val w_varint : Buffer.t -> int -> unit
(** LEB128 unsigned varint (7 value bits per byte).  Raises
    [Invalid_argument] on negatives.  Compact encoding for the long
    runs of small ints in warm transition tables. *)

val w_str : Buffer.t -> string -> unit
(** Length (u32) prefixed bytes. *)

val w_opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val w_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit

type r
(** A read cursor over a string window. *)

val reader : ?pos:int -> ?stop:int -> string -> r
val r_u8 : r -> int
val r_u16 : r -> int
val r_u32 : r -> int
val r_u64 : r -> int
val r_bool : r -> bool

val r_varint : r -> int
(** Reads a {!w_varint}-encoded int; raises {!Corrupt} on encodings
    longer than a 63-bit OCaml int can hold. *)

val r_str : r -> string
val r_raw : r -> int -> string

val r_view : r -> int -> r
(** A sub-reader over the next [n] bytes, sharing the backing string
    (no copy); the parent cursor advances past them. *)

val sub_reader : r -> r
(** A fresh cursor over [r]'s remaining window.  Lets a lazy decoder
    re-read a held view without mutating it, so concurrent decode
    attempts never race on a shared cursor. *)

val r_opt : (r -> 'a) -> r -> 'a option
val r_count : ?limit:int -> r -> int
(** A u32 element count, capped (default 2^24) so forged counts cannot
    provoke giant allocations. *)

val r_list : (r -> 'a) -> r -> 'a list
val r_array : (r -> 'a) -> r -> 'a array
val at_end : r -> bool

val protect : (unit -> 'a) -> ('a, string) result
(** Runs a decoder, catching {!Truncated} and {!Corrupt}. *)

val hash64 : ?pos:int -> ?len:int -> string -> int64
(** XXH64 of the byte range (whole string by default), via a C stub —
    fast enough to checksum a whole rule pack on the cold-start path.
    Not cryptographic: an integrity check against corruption, not an
    authenticity mechanism. *)

(** Per-tenant token-bucket admission control.

    Each tenant (an HTTP header identity, or a per-connection fallback)
    gets a bucket of [burst] tokens refilled continuously at [rate]
    tokens per second; a request spends one token.  An empty bucket
    rejects with the number of seconds until a token is available —
    the gateway turns that into [429] plus a [Retry-After] header.

    The tenant table is bounded: past [max_tenants] (default 4096),
    idle tenants (bucket refilled to burst) are swept, and if every
    bucket is active the table is cleared outright — brief
    over-admission, never unbounded memory.

    Instrument: [server_quota_rejections_total]. *)

type t

val create : ?max_tenants:int -> rate:float -> burst:float -> unit -> t
(** [rate] tokens per second, [burst] bucket capacity (both > 0). *)

val check : t -> tenant:string -> [ `Admit | `Reject of float ]
(** Spend one token for [tenant]; [`Reject retry_after] gives the
    seconds until the bucket next holds a full token. *)

type stats = { tenants : int; rejections : int }

val stats : t -> stats

(** Response byte output, with the syscall count on the record.

    Every front-end response — an NDJSON line, a whole HTTP response —
    is serialized into one string first and handed here, so under
    normal conditions each response costs exactly one [write] syscall
    (short writes on a full socket buffer retry from the offset and
    count again).  [server_write_syscalls_total] counts actual [write]
    invocations; comparing it against responses delivered proves the
    one-write-per-response property instead of asserting it. *)

val write_all : Unix.file_descr -> string -> unit
(** Writes the whole string, retrying on short writes and [EINTR].
    Other [Unix.Unix_error]s propagate (the connection is gone — the
    caller drops it). *)

val write_syscalls : unit -> int
(** Total [write] syscalls issued through {!write_all} so far, process
    wide — the test hook behind [server_write_syscalls_total]. *)

(* See rcache.mli.  Each shard is a classic intrusive doubly-linked
   LRU over a hashtable, guarded by its own mutex; the hot path (find
   on a hit) takes one lock, does one hashtable probe and a couple of
   pointer swings.  The 128-bit key is two XXH64 passes: one over the
   request body, one over a small metadata string that binds the salt,
   kind, file label, options and the first hash — so the body is
   hashed exactly once and never copied or compared. *)

type node = {
  nd_key : int64 * int64;
  nd_value : string;
  nd_size : int;
  mutable nd_prev : node option;  (* toward most recently used *)
  mutable nd_next : node option;  (* toward least recently used *)
}

type shard = {
  lock : Mutex.t;
  table : (int64 * int64, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable bytes : int;
}

type t = {
  shards : shard array;
  mask : int;
  shard_budget : int;
  max_bytes : int;
  salt : string Atomic.t;
  generation : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  insertions : int Atomic.t;
  evictions : int Atomic.t;
}

let hits_counter = Telemetry.Counter.make "server_cache_hits_total"
let misses_counter = Telemetry.Counter.make "server_cache_misses_total"
let insertions_counter = Telemetry.Counter.make "server_cache_insertions_total"
let evictions_counter = Telemetry.Counter.make "server_cache_evictions_total"

(* Hashtable buckets, LRU pointers, key and size words: a flat
   per-entry charge so byte budgets bound real memory, not just
   payload bytes. *)
let entry_overhead = 96

let create ?(shards = 8) ~max_bytes ~salt () =
  if max_bytes < 1 then invalid_arg "Rcache.create: max_bytes must be >= 1";
  let n =
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    pow2 1
  in
  {
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 256;
            mru = None;
            lru = None;
            bytes = 0;
          });
    mask = n - 1;
    shard_budget = max 1 (max_bytes / n);
    max_bytes;
    salt = Atomic.make salt;
    generation = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    insertions = Atomic.make 0;
    evictions = Atomic.make 0;
  }

type key = { k1 : int64; k2 : int64; key_gen : int }

let key t ~kind ~file ~options ~body =
  let key_gen = Atomic.get t.generation in
  let k1 = Binio.hash64 body in
  let meta =
    Printf.sprintf "%s\x00%s\x00%s\x00%s\x00%d\x00%Lx" (Atomic.get t.salt)
      kind file options (String.length body) k1
  in
  { k1; k2 = Binio.hash64 meta; key_gen }

let shard_of t k = t.shards.(Int64.to_int k.k2 land t.mask)

(* --- the LRU list, all under the shard lock -------------------------------- *)

let unlink shard node =
  (match node.nd_prev with
  | Some p -> p.nd_next <- node.nd_next
  | None -> shard.mru <- node.nd_next);
  (match node.nd_next with
  | Some n -> n.nd_prev <- node.nd_prev
  | None -> shard.lru <- node.nd_prev);
  node.nd_prev <- None;
  node.nd_next <- None

let push_front shard node =
  node.nd_next <- shard.mru;
  (match shard.mru with Some m -> m.nd_prev <- Some node | None -> ());
  shard.mru <- Some node;
  if shard.lru = None then shard.lru <- Some node

let drop shard node =
  unlink shard node;
  Hashtbl.remove shard.table node.nd_key;
  shard.bytes <- shard.bytes - node.nd_size

(* --- operations ------------------------------------------------------------ *)

let find t k =
  let shard = shard_of t k in
  let result =
    Mutex.protect shard.lock (fun () ->
        match Hashtbl.find_opt shard.table (k.k1, k.k2) with
        | None -> None
        | Some node ->
          unlink shard node;
          push_front shard node;
          Some node.nd_value)
  in
  (match result with
  | Some _ ->
    Atomic.incr t.hits;
    Telemetry.Counter.incr hits_counter
  | None ->
    Atomic.incr t.misses;
    Telemetry.Counter.incr misses_counter);
  result

let add t k value =
  let size = String.length value + entry_overhead in
  if size <= t.shard_budget && k.key_gen = Atomic.get t.generation then begin
    let shard = shard_of t k in
    let evicted =
      Mutex.protect shard.lock (fun () ->
          (* Inserting under a generation the invalidator already
             retired would resurrect a stale result; the generation
             check just above closes all but a tiny window, and the
             clear below runs with every shard lock held in turn, so
             re-checking here under the lock closes it completely. *)
          if k.key_gen <> Atomic.get t.generation then None
          else begin
            (match Hashtbl.find_opt shard.table (k.k1, k.k2) with
            | Some old -> drop shard old
            | None -> ());
            let node =
              {
                nd_key = (k.k1, k.k2);
                nd_value = value;
                nd_size = size;
                nd_prev = None;
                nd_next = None;
              }
            in
            Hashtbl.replace shard.table node.nd_key node;
            push_front shard node;
            shard.bytes <- shard.bytes + size;
            let evicted = ref 0 in
            while shard.bytes > t.shard_budget do
              match shard.lru with
              | Some victim ->
                drop shard victim;
                incr evicted
              | None -> shard.bytes <- 0 (* unreachable: list mirrors bytes *)
            done;
            Some !evicted
          end)
    in
    match evicted with
    | None -> ()
    | Some evicted ->
      Atomic.incr t.insertions;
      Telemetry.Counter.incr insertions_counter;
      for _ = 1 to evicted do
        Atomic.incr t.evictions;
        Telemetry.Counter.incr evictions_counter
      done
  end

let invalidate t ~salt =
  Atomic.set t.salt salt;
  Atomic.incr t.generation;
  Array.iter
    (fun shard ->
      Mutex.protect shard.lock (fun () ->
          Hashtbl.reset shard.table;
          shard.mru <- None;
          shard.lru <- None;
          shard.bytes <- 0))
    t.shards

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  entries : int;
  bytes : int;
  max_bytes : int;
  shards : int;
}

let stats (t : t) =
  let entries = ref 0 and bytes = ref 0 in
  Array.iter
    (fun shard ->
      Mutex.protect shard.lock (fun () ->
          entries := !entries + Hashtbl.length shard.table;
          bytes := !bytes + shard.bytes))
    t.shards;
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    insertions = Atomic.get t.insertions;
    evictions = Atomic.get t.evictions;
    entries = !entries;
    bytes = !bytes;
    max_bytes = t.max_bytes;
    shards = Array.length t.shards;
  }

(* See rcache.mli.  Each shard is a classic intrusive doubly-linked
   LRU over a hashtable, guarded by its own mutex; the hot path (find
   on a hit) takes one lock, does one hashtable probe and a couple of
   pointer swings.  The 128-bit key is two XXH64 passes: one over the
   request body, one over a small metadata string that binds the salt,
   kind, file label, options and the first hash — so the body is
   hashed exactly once and never copied or compared. *)

type node = {
  nd_key : int64 * int64;
  nd_value : string;
  nd_size : int;
  mutable nd_prev : node option;  (* toward most recently used *)
  mutable nd_next : node option;  (* toward least recently used *)
}

type shard = {
  lock : Mutex.t;
  table : (int64 * int64, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable bytes : int;
}

type t = {
  shards : shard array;
  mask : int;
  shard_budget : int;
  max_bytes : int;
  salt : string Atomic.t;
  generation : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  insertions : int Atomic.t;
  evictions : int Atomic.t;
  restored : int Atomic.t;
}

let hits_counter = Telemetry.Counter.make "server_cache_hits_total"
let misses_counter = Telemetry.Counter.make "server_cache_misses_total"
let insertions_counter = Telemetry.Counter.make "server_cache_insertions_total"
let evictions_counter = Telemetry.Counter.make "server_cache_evictions_total"

let restored_counter =
  Telemetry.Counter.make "server_cache_restored_entries_total"

(* Hashtable buckets, LRU pointers, key and size words: a flat
   per-entry charge so byte budgets bound real memory, not just
   payload bytes. *)
let entry_overhead = 96

let create ?(shards = 8) ~max_bytes ~salt () =
  if max_bytes < 1 then invalid_arg "Rcache.create: max_bytes must be >= 1";
  let n =
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    pow2 1
  in
  {
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 256;
            mru = None;
            lru = None;
            bytes = 0;
          });
    mask = n - 1;
    shard_budget = max 1 (max_bytes / n);
    max_bytes;
    salt = Atomic.make salt;
    generation = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    insertions = Atomic.make 0;
    evictions = Atomic.make 0;
    restored = Atomic.make 0;
  }

type key = { k1 : int64; k2 : int64; key_gen : int }

let key t ~kind ~file ~options ~body =
  let key_gen = Atomic.get t.generation in
  let k1 = Binio.hash64 body in
  let meta =
    Printf.sprintf "%s\x00%s\x00%s\x00%s\x00%d\x00%Lx" (Atomic.get t.salt)
      kind file options (String.length body) k1
  in
  { k1; k2 = Binio.hash64 meta; key_gen }

let shard_of t k = t.shards.(Int64.to_int k.k2 land t.mask)

(* --- the LRU list, all under the shard lock -------------------------------- *)

let unlink shard node =
  (match node.nd_prev with
  | Some p -> p.nd_next <- node.nd_next
  | None -> shard.mru <- node.nd_next);
  (match node.nd_next with
  | Some n -> n.nd_prev <- node.nd_prev
  | None -> shard.lru <- node.nd_prev);
  node.nd_prev <- None;
  node.nd_next <- None

let push_front shard node =
  node.nd_next <- shard.mru;
  (match shard.mru with Some m -> m.nd_prev <- Some node | None -> ());
  shard.mru <- Some node;
  if shard.lru = None then shard.lru <- Some node

let drop shard node =
  unlink shard node;
  Hashtbl.remove shard.table node.nd_key;
  shard.bytes <- shard.bytes - node.nd_size

(* --- operations ------------------------------------------------------------ *)

let find t k =
  let shard = shard_of t k in
  let result =
    Mutex.protect shard.lock (fun () ->
        match Hashtbl.find_opt shard.table (k.k1, k.k2) with
        | None -> None
        | Some node ->
          unlink shard node;
          push_front shard node;
          Some node.nd_value)
  in
  (match result with
  | Some _ ->
    Atomic.incr t.hits;
    Telemetry.Counter.incr hits_counter
  | None ->
    Atomic.incr t.misses;
    Telemetry.Counter.incr misses_counter);
  result

let add t k value =
  let size = String.length value + entry_overhead in
  if size <= t.shard_budget && k.key_gen = Atomic.get t.generation then begin
    let shard = shard_of t k in
    let evicted =
      Mutex.protect shard.lock (fun () ->
          (* Inserting under a generation the invalidator already
             retired would resurrect a stale result; the generation
             check just above closes all but a tiny window, and the
             clear below runs with every shard lock held in turn, so
             re-checking here under the lock closes it completely. *)
          if k.key_gen <> Atomic.get t.generation then None
          else begin
            (match Hashtbl.find_opt shard.table (k.k1, k.k2) with
            | Some old -> drop shard old
            | None -> ());
            let node =
              {
                nd_key = (k.k1, k.k2);
                nd_value = value;
                nd_size = size;
                nd_prev = None;
                nd_next = None;
              }
            in
            Hashtbl.replace shard.table node.nd_key node;
            push_front shard node;
            shard.bytes <- shard.bytes + size;
            let evicted = ref 0 in
            while shard.bytes > t.shard_budget do
              match shard.lru with
              | Some victim ->
                drop shard victim;
                incr evicted
              | None -> shard.bytes <- 0 (* unreachable: list mirrors bytes *)
            done;
            Some !evicted
          end)
    in
    match evicted with
    | None -> ()
    | Some evicted ->
      Atomic.incr t.insertions;
      Telemetry.Counter.incr insertions_counter;
      for _ = 1 to evicted do
        Atomic.incr t.evictions;
        Telemetry.Counter.incr evictions_counter
      done
  end

let invalidate t ~salt =
  Atomic.set t.salt salt;
  Atomic.incr t.generation;
  Array.iter
    (fun shard ->
      Mutex.protect shard.lock (fun () ->
          Hashtbl.reset shard.table;
          shard.mru <- None;
          shard.lru <- None;
          shard.bytes <- 0))
    t.shards

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  restored : int;
  entries : int;
  bytes : int;
  max_bytes : int;
  shards : int;
}

let stats (t : t) =
  let entries = ref 0 and bytes = ref 0 in
  Array.iter
    (fun shard ->
      Mutex.protect shard.lock (fun () ->
          entries := !entries + Hashtbl.length shard.table;
          bytes := !bytes + shard.bytes))
    t.shards;
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    insertions = Atomic.get t.insertions;
    evictions = Atomic.get t.evictions;
    restored = Atomic.get t.restored;
    entries = !entries;
    bytes = !bytes;
    max_bytes = t.max_bytes;
    shards = Array.length t.shards;
  }

(* --- snapshot / restore ---------------------------------------------------- *)

(* Layout mirrors the rule pack's:

     magic (8 bytes) | version (u8) | salt (str) | generation (u32)
     | entry count (u32) | entries | XXH64 of everything above

   An entry is the raw 128-bit key (two int64, little-endian) plus the
   length-prefixed response body.  The key hashes are persisted as-is —
   they bind the salt through [key]'s meta pass, so a snapshot replayed
   into a cache running a different rule-pack fingerprint would never
   be probed successfully anyway; the explicit salt check below just
   turns that silent dead weight into a refusal.  Entries are written
   least- to most-recently used per shard, so replaying [add]s on
   restore reproduces the recency order. *)

let snapshot_magic = "PITRCS\x00\x00"
let snapshot_version = 1

let save_snapshot t ~path =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf snapshot_magic;
  Binio.w_u8 buf snapshot_version;
  Binio.w_str buf (Atomic.get t.salt);
  Binio.w_u32 buf (Atomic.get t.generation);
  let count = ref 0 in
  let entries = Buffer.create (1 lsl 16) in
  Array.iter
    (fun shard ->
      Mutex.protect shard.lock (fun () ->
          let rec walk = function
            | None -> ()
            | Some node ->
              let k1, k2 = node.nd_key in
              let b = Bytes.create 16 in
              Bytes.set_int64_le b 0 k1;
              Bytes.set_int64_le b 8 k2;
              Buffer.add_bytes entries b;
              Binio.w_str entries node.nd_value;
              incr count;
              walk node.nd_prev
          in
          walk shard.lru))
    t.shards;
  Binio.w_u32 buf !count;
  Buffer.add_buffer buf entries;
  let checksum = Binio.hash64 (Buffer.contents buf) in
  let trailer = Bytes.create 8 in
  Bytes.set_int64_le trailer 0 checksum;
  Buffer.add_bytes buf trailer;
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Buffer.output_buffer oc buf);
    Sys.rename tmp path
  with
  | () -> Ok !count
  | exception Sys_error msg -> Error msg

let restore_snapshot t ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "truncated cache snapshot"
  | data ->
    let mlen = String.length snapshot_magic in
    if String.length data < mlen + 8 || String.sub data 0 mlen <> snapshot_magic
    then Error "not a cache snapshot (bad magic)"
    else begin
      let dlen = String.length data - 8 in
      if
        not
          (Int64.equal (Binio.hash64 ~len:dlen data)
             (String.get_int64_le data dlen))
      then Error "cache snapshot checksum mismatch"
      else begin
        let parse () =
          let r = Binio.reader ~pos:mlen ~stop:dlen data in
          let version = Binio.r_u8 r in
          if version <> snapshot_version then
            raise
              (Binio.Corrupt
                 (Printf.sprintf "snapshot version %d, this build reads %d"
                    version snapshot_version));
          let salt = Binio.r_str r in
          let (_ : int) = Binio.r_u32 r in
          (* saved generation: informational — generations are
             process-local, restored entries are re-keyed under the
             live one below *)
          if not (String.equal salt (Atomic.get t.salt)) then
            raise
              (Binio.Corrupt
                 "snapshot was taken under a different rule-pack fingerprint");
          let count = Binio.r_count r in
          (* decode fully before touching the cache: a forged tail must
             not leave a half-replayed snapshot behind *)
          let acc = ref [] in
          for _ = 1 to count do
            let raw = Binio.r_raw r 16 in
            let k1 = String.get_int64_le raw 0 in
            let k2 = String.get_int64_le raw 8 in
            let value = Binio.r_str r in
            acc := (k1, k2, value) :: !acc
          done;
          if not (Binio.at_end r) then
            raise (Binio.Corrupt "trailing bytes after the last entry");
          let gen = Atomic.get t.generation in
          List.iter
            (fun (k1, k2, value) -> add t { k1; k2; key_gen = gen } value)
            (List.rev !acc);
          count
        in
        match Binio.protect parse with
        | Ok n ->
          ignore (Atomic.fetch_and_add t.restored n : int);
          Telemetry.Counter.incr ~by:n restored_counter;
          Ok n
        | Error msg -> Error msg
      end
    end

(** The [patchitpy serve] wire protocol.

    Newline-delimited JSON, one document per line in both directions,
    versioned by a [schema] field ({!schema}).  Requests carry a
    client-chosen [id]; responses echo it, and may arrive in any order
    relative to submission — the pool completes requests as workers
    free up.  All encoding/decoding is pure string-to-value, so framing
    can be tested (and fuzzed) without sockets or processes.

    Framing invariants:
    - encoded documents never contain a raw newline (string fields are
      RFC 8259-escaped), so sources with embedded newlines are safe;
    - a success envelope's [body] field comes last and holds the
      payload's raw bytes — for [scan] these are byte-identical to the
      one-shot [patchitpy scan --json] line for the same file, and
      {!raw_body} recovers them exactly. *)

val schema : string
(** ["patchitpy-serve/1"]. *)

type stats_format = Stats_json | Stats_prometheus

type trace_mode =
  | Trace_last  (** the [count] most recent flight-recorder records *)
  | Trace_slow  (** the [count] slowest records by total duration *)

type trace_format =
  | Trace_chrome  (** Chrome [trace_event] JSON (Perfetto-loadable) *)
  | Trace_ndjson
      (** compact [patchitpy-trace/1] NDJSON, as a JSON string body *)

val max_trace_count : int
(** Upper bound on {!Trace_dump}'s [count] (4096). *)

val default_trace_count : int
(** [count] when the request omits it (32). *)

type kind =
  | Scan of { file : string; source : string }
      (** [file] is a label for the report; [source] the code to scan. *)
  | Patch of { file : string; source : string }
  | Health  (** liveness + queue occupancy *)
  | Stats of stats_format
      (** the telemetry report: the [--trace] JSON document, or the
          Prometheus text exposition as a JSON string *)
  | Trace_dump of { count : int; mode : trace_mode; format : trace_format }
      (** dump request-lifecycle traces from the flight recorder
          ({!Telemetry.Trace}): the last [count] records, or the [count]
          slowest *)

type request = {
  id : string;  (** client-chosen correlation key, echoed in the response *)
  deadline_steps : int option;
      (** per-request matcher-step allowance ({!Rx.with_step_deadline});
          exhausting it yields a [Timeout] error response *)
  kind : kind;
}

type error_kind =
  | Invalid  (** malformed or unsupported request; never enqueued *)
  | Too_large  (** request frame over the configured byte bound *)
  | Overloaded  (** submission queue full; retry later *)
  | Timeout  (** the request's step deadline was exhausted *)
  | Internal  (** the request raised; the worker survived *)

type response =
  | Reply of { id : string; kind : string; body : string }
      (** [body] is raw JSON (already encoded), embedded verbatim. *)
  | Error_reply of { id : string option; error : error_kind; message : string }
      (** [id] is [None] only when the request was too malformed to
          recover one. *)

val kind_name : kind -> string
(** ["scan"], ["patch"], ["health"], ["stats"] or ["trace"]. *)

val trace_mode_name : trace_mode -> string
(** ["last"] or ["slow"]. *)

val trace_format_name : trace_format -> string
(** ["chrome"] or ["ndjson"]. *)

val error_kind_to_string : error_kind -> string
val error_kind_of_string : string -> error_kind option

val encode_request : request -> string
(** One line, no trailing newline. *)

val encode_response : response -> string
(** One line, no trailing newline.  For {!Reply}, [body] must itself be
    valid single-line JSON (the server only embeds {!Patchitpy.Jsonout}
    and {!Telemetry.Report} output, which is). *)

val decode_request : string -> (request, string option * string) result
(** Decodes one request line.  The error carries the client id when one
    could be recovered from the document (so the error response can be
    correlated) and a message that names the expected schema. *)

val decode_response : string -> (response, string) result
(** Decodes one response line; {!Reply.body} gets the raw body bytes
    ({!raw_body}). *)

val raw_body : string -> string option
(** The exact bytes of a success envelope's [body] field, with no
    re-serialization — what the differential tests byte-compare against
    one-shot CLI output. *)

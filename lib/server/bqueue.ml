(* A bounded multi-producer/multi-consumer queue.

   The backpressure primitive of the server: producers never block (a
   full queue is an immediate [`Full], which the front-end turns into an
   [overloaded] error response), consumers block until an item arrives
   or the queue is closed and drained.  Memory is bounded by
   construction — capacity is fixed at creation and [push] refuses
   beyond it. *)

type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    items = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let try_push t x =
  Mutex.protect t.mutex (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  Mutex.protect t.mutex (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  Mutex.protect t.mutex (fun () ->
      t.closed <- true;
      (* every blocked consumer must wake to observe the close *)
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.mutex (fun () -> Queue.length t.items)

(* See gateway.mli.  One thread per connection, fully synchronous:
   read a request, route it, block on the pool's delivery, write the
   whole serialized response with one [Netio.write_all].  Blocking a
   thread costs no worker time — domains do the scanning. *)

type t = {
  pool : Pool.t;
  quota : Quota.t option;
  limits : Http.limits;
}

let create ?quota ?(limits = Http.default_limits) ~pool () =
  { pool; quota; limits }

(* HTTP requests carry no client correlation id; mint one so traces
   and error replies stay correlatable across the pool. *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Printf.sprintf "http-%d" (Atomic.fetch_and_add counter 1)

let json_ct = ("content-type", "application/json")

let error_body ~error ~message =
  Printf.sprintf "{\"error\":\"%s\",\"message\":%s}\n"
    (Protocol.error_kind_to_string error)
    ("\"" ^ Patchitpy.Jsonout.escape_string message ^ "\"")

let status_of_error = function
  | Protocol.Invalid -> 400
  | Protocol.Too_large -> 413
  | Protocol.Overloaded -> 503
  | Protocol.Timeout -> 504
  | Protocol.Internal -> 500

(* Submit through the pool (result cache included) and block until the
   delivery callback fires — out-of-order completion is invisible here
   because each connection thread waits for its own request. *)
let await_pool t request =
  let result = ref None in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  Pool.submit t.pool request ~deliver:(fun response ->
      Mutex.protect mutex (fun () ->
          result := Some response;
          Condition.signal cond));
  Mutex.protect mutex (fun () ->
      while !result = None do
        Condition.wait cond mutex
      done;
      Option.get !result)

let respond_pool t ~headers request =
  match await_pool t request with
  | Protocol.Reply { body; _ } ->
    Http.response ~headers:(json_ct :: headers) ~status:200 ~body:(body ^ "\n")
      ()
  | Protocol.Error_reply { error; message; _ } ->
    let extra =
      match error with Protocol.Overloaded -> [ ("retry-after", "1") ] | _ -> []
    in
    Http.response
      ~headers:((json_ct :: extra) @ headers)
      ~status:(status_of_error error)
      ~body:(error_body ~error ~message)
      ()

let scan_like t ~headers req make =
  let file = Option.value ~default:"-" (Http.header req "x-patchitpy-file") in
  match
    match Http.header req "x-patchitpy-deadline-steps" with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error ())
  with
  | Error () ->
    Http.response ~headers:(json_ct :: headers) ~status:400
      ~body:
        (error_body ~error:Protocol.Invalid
           ~message:"x-patchitpy-deadline-steps must be a positive integer")
      ()
  | Ok deadline_steps ->
    respond_pool t ~headers
      {
        Protocol.id = next_id ();
        deadline_steps;
        kind = make ~file ~source:req.Http.body;
      }

let over_quota ~headers retry_after =
  let seconds = max 1 (int_of_float (Float.ceil retry_after)) in
  Http.response
    ~headers:
      ([ json_ct; ("retry-after", string_of_int seconds) ] @ headers)
    ~status:429
    ~body:
      (error_body ~error:Protocol.Overloaded
         ~message:
           (Printf.sprintf "tenant over quota; retry in %ds" seconds))
    ()

let route t ~peer ~headers req =
  let admit () =
    match t.quota with
    | None -> `Admit
    | Some quota ->
      let tenant =
        Option.value ~default:peer (Http.header req "x-patchitpy-tenant")
      in
      Quota.check quota ~tenant
  in
  match (req.Http.meth, req.Http.target) with
  | "POST", "/v1/scan" -> (
    match admit () with
    | `Reject retry_after -> over_quota ~headers retry_after
    | `Admit ->
      scan_like t ~headers req (fun ~file ~source ->
          Protocol.Scan { file; source }))
  | "POST", "/v1/patch" -> (
    match admit () with
    | `Reject retry_after -> over_quota ~headers retry_after
    | `Admit ->
      scan_like t ~headers req (fun ~file ~source ->
          Protocol.Patch { file; source }))
  | "GET", "/v1/health" ->
    respond_pool t ~headers
      { Protocol.id = next_id (); deadline_steps = None; kind = Protocol.Health }
  | "GET", "/v1/stats" ->
    respond_pool t ~headers
      {
        Protocol.id = next_id ();
        deadline_steps = None;
        kind = Protocol.Stats Protocol.Stats_json;
      }
  | "GET", "/metrics" ->
    Http.response
      ~headers:(("content-type", "text/plain; version=0.0.4") :: headers)
      ~status:200
      ~body:(Pool.prometheus_text ())
      ()
  | _, ("/v1/scan" | "/v1/patch" | "/v1/health" | "/v1/stats" | "/metrics") ->
    Http.response ~headers:(json_ct :: headers) ~status:405
      ~body:(error_body ~error:Protocol.Invalid ~message:"method not allowed")
      ()
  | _ ->
    Http.response ~headers:(json_ct :: headers) ~status:404
      ~body:(error_body ~error:Protocol.Invalid ~message:"no such endpoint")
      ()

let handle_connection t ~peer fd =
  let conn =
    Http.conn (fun buf pos len ->
        let rec go () =
          match Unix.read fd buf pos len with
          | n -> n
          | exception Unix.Unix_error (EINTR, _, _) -> go ()
        in
        go ())
  in
  let rec serve () =
    match Http.read_request ~limits:t.limits conn with
    | None -> ()
    | Some (Error e) ->
      (* The byte stream is poisoned; answer and hang up. *)
      let error =
        match e with
        | Http.Too_large _ -> Protocol.Too_large
        | Http.Bad_request _ | Http.Unsupported _
        | Http.Version_not_supported _ ->
          Protocol.Invalid
      in
      Netio.write_all fd
        (Http.response
           ~headers:[ json_ct; ("connection", "close") ]
           ~status:(Http.error_status e)
           ~body:(error_body ~error ~message:(Http.error_message e))
           ())
    | Some (Ok req) ->
      let keep = Http.keep_alive req in
      let headers = if keep then [] else [ ("connection", "close") ] in
      Netio.write_all fd (route t ~peer ~headers req);
      if keep then serve ()
  in
  (try serve () with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(** The [patchitpy serve] daemon loop.

    Accepts {!Protocol} request lines over stdin/stdout and, when
    configured, a Unix-domain socket; and HTTP/1.1 on a loopback TCP
    port ({!Gateway}).  All front-ends dispatch to one {!Pool} of
    worker domains sharing one compiled scan plan — behind one
    content-hash result cache when [cache_bytes] > 0 — and write
    framed responses back to the submitting front-end as requests
    complete (out-of-order relative to submission — correlate by id).
    Each response is one buffer and, normally, one [write] syscall
    ([server_write_syscalls_total] counts them).

    Shutdown: SIGTERM or SIGINT stops accepting (listeners closed,
    socket unlinked, queue closed) and drains in-flight work for up to
    [drain_timeout] seconds before returning 0.  With no listeners
    configured, EOF on stdin triggers the same drain once every
    submitted request has been answered — one-shot batch mode. *)

type config = {
  socket : string option;  (** Unix-domain socket path, unlinked on exit *)
  http_port : int option;  (** HTTP/1.1 gateway port, bound on loopback *)
  jobs : int;  (** worker domains *)
  queue_capacity : int;  (** bounded submission queue slots *)
  drain_timeout : float;  (** seconds to wait for in-flight work on shutdown *)
  trace_dir : string option;
      (** when set, the flight recorder's surviving records are dumped
          here on shutdown: [serve-<pid>.trace.json] (Chrome
          [trace_event], Perfetto-loadable) and [serve-<pid>.ndjson]
          (compact [patchitpy-trace/1] lines) *)
  max_request_bytes : int;
      (** per-frame byte bound, all front-ends: an NDJSON line over it
          gets a typed [too_large] error reply (framing resynchronizes
          at the next newline), an HTTP body over it a 413 *)
  cache_bytes : int;
      (** result-cache byte budget; 0 disables the cache *)
  cache_file : string option;
      (** when set, the result cache is restored from this snapshot
          file at boot ({!Rcache.restore_snapshot} — a missing,
          mismatched or corrupt file just means a cold start) and
          persisted back on graceful drain ({!Rcache.save_snapshot},
          best-effort, temp + rename) *)
  quota : (float * float) option;
      (** HTTP per-tenant token bucket as (rate per second, burst);
          [None] admits everything *)
}

val default_max_request_bytes : int
(** 8 MiB. *)

val default_cache_bytes : int
(** 64 MiB. *)

val claim_unix_socket : string -> (unit, string) result
(** Makes [path] bindable: nothing there is fine; a socket file no
    live daemon answers on (connect probe refused) is stale and gets
    removed; a live daemon or a non-socket file is an [Error] — the
    daemon refuses to steal either. *)

val connection_loop : Pool.t -> max_request_bytes:int -> Unix.file_descr -> unit
(** Serves one NDJSON connection to completion and closes the
    descriptor — the socket front-end runs this on a thread per
    accepted connection; exposed so tests can drive a connection over
    a socketpair without a listener. *)

val run :
  ?pack:int * string ->
  ?warm_boot:(unit -> unit) ->
  scanner:Patchitpy.Scanner.t ->
  config ->
  int
(** Blocks until shutdown; returns the process exit code: 0 after a
    graceful or timed-out drain, 1 when the socket path could not be
    claimed ({!claim_unix_socket}).  Installs a process-wide telemetry
    sink and SIGTERM/SIGINT/SIGPIPE handlers, and enables the
    {!Telemetry.Trace} flight recorder for the daemon's lifetime: every
    request is traced intake → cache lookup → queue wait → dispatch →
    scan/patch phases → serialize → write into fixed-size per-domain
    rings (overwrite-oldest), queryable live via the [trace] request
    kind and summarized by the [stats] latency breakdown. *)

(** The [patchitpy serve] daemon loop.

    Accepts {!Protocol} request lines over stdin/stdout and, when
    configured, a Unix-domain socket; dispatches them to a {!Pool} of
    worker domains sharing one compiled scan plan; and writes framed
    responses back to the submitting front-end as requests complete
    (out-of-order relative to submission — correlate by id).

    Shutdown: SIGTERM or SIGINT stops accepting (listener closed,
    socket unlinked, queue closed) and drains in-flight work for up to
    [drain_timeout] seconds before returning 0.  With no socket
    configured, EOF on stdin triggers the same drain once every
    submitted request has been answered — one-shot batch mode. *)

type config = {
  socket : string option;  (** Unix-domain socket path, unlinked on exit *)
  jobs : int;  (** worker domains *)
  queue_capacity : int;  (** bounded submission queue slots *)
  drain_timeout : float;  (** seconds to wait for in-flight work on shutdown *)
  trace_dir : string option;
      (** when set, the flight recorder's surviving records are dumped
          here on shutdown: [serve-<pid>.trace.json] (Chrome
          [trace_event], Perfetto-loadable) and [serve-<pid>.ndjson]
          (compact [patchitpy-trace/1] lines) *)
}

val run :
  ?pack:int * string -> scanner:Patchitpy.Scanner.t -> config -> int
(** Blocks until shutdown; returns the process exit code (0 after a
    graceful or timed-out drain).  Installs a process-wide telemetry
    sink and SIGTERM/SIGINT/SIGPIPE handlers, and enables the
    {!Telemetry.Trace} flight recorder for the daemon's lifetime: every
    request is traced intake → queue wait → dispatch → scan/patch
    phases → serialize → write into fixed-size per-domain rings
    (overwrite-oldest), queryable live via the [trace] request kind and
    summarized by the [stats] latency breakdown. *)

(** The serve worker pool: OCaml 5 domains sharing one compiled scan
    plan.

    Requests enter through {!submit} into a bounded {!Bqueue}; workers
    pop, execute, and hand the response to the job's own delivery
    callback, so completion order is independent of submission order
    (responses are correlated by id, not position).  Every submission
    eventually produces exactly one callback invocation: queued work is
    executed, a full or closed queue delivers an [overloaded] error
    immediately on the caller's thread.

    Robustness, per request: a {!Rx.Deadline_exceeded} becomes a
    [timeout] error response, any other exception an [error] response;
    the worker survives both and takes the next job.

    Instruments (live in {!Telemetry}, reported by the [stats] request):
    [server_requests_total], [server_overloaded_total],
    [server_timeouts_total], [server_errors_total],
    [server_queue_depth] (occupancy observed at each submission) and
    [server_request_latency_ns] (per-request span). *)

type t

val create :
  ?pack:int * string ->
  ?rcache:Rcache.t ->
  ?warm_boot:(unit -> unit) ->
  jobs:int ->
  queue_capacity:int ->
  scanner:Patchitpy.Scanner.t ->
  unit ->
  t
(** Spawns [jobs] worker domains over a queue of [queue_capacity]
    slots.  The scanner is shared by reference — compiled scan plans
    are immutable and domain-safe.  [pack] is the (format version,
    catalog hash) of the rule pack the plan was loaded from, if any;
    the [health] reply reports it so clients can tell which rules a
    daemon is running.  [rcache] puts a content-hash result cache in
    front of the queue: {!submit} probes it for [scan]/[patch]
    requests and delivers hits synchronously; misses populate it at
    delivery time.  Its salt must be the rule-pack fingerprint of
    [scanner]'s catalog.  [warm_boot] runs once inside every worker
    domain before it takes its first job — transition caches are
    per-domain, so per-domain heat (e.g. {!Rulepack.prewarm} of a warm
    pack) must run there, not in the spawning domain. *)

val rcache : t -> Rcache.t option
(** The result cache given to {!create}, for stats and invalidation. *)

val submit :
  ?trace:Telemetry.Trace.t ->
  t ->
  Protocol.request ->
  deliver:(Protocol.response -> unit) ->
  unit
(** Never blocks.  [deliver] is invoked exactly once per call: from a
    worker domain with the request's response, synchronously with the
    cached response on a result-cache hit, or synchronously with an
    [overloaded] error when the queue is full or the pool draining.
    [deliver] must be thread-safe against other deliveries to the same
    destination; exceptions it raises are swallowed.

    When tracing is on ({!Telemetry.Trace.enable}), the request's
    lifecycle is recorded into the executing worker's flight-recorder
    ring: pass [trace] to carry over a builder that already holds an
    intake span, or omit it to have one created here.  The enqueue time
    is stamped at push, so the queue-wait phase is exact.  Overloaded
    submissions and cache hits are not recorded (they never reach a
    worker domain); a cache miss contributes a [cache-lookup] span to
    the record. *)

val prometheus_text : unit -> string
(** The raw Prometheus text exposition (the [stats prometheus] reply
    embeds the same text as a JSON string; the HTTP gateway serves it
    verbatim on [GET /metrics]).  Empty when no telemetry sink is
    installed. *)

val execute : t -> Protocol.request -> Protocol.response
(** Executes one request synchronously on the calling domain, with the
    same deadline/exception envelope as a worker.  The differential
    tests and the bench driver use it to exercise request semantics
    without queue scheduling. *)

val pending : t -> int
(** Requests accepted but not yet delivered (queued + executing). *)

val shutdown : ?drain_timeout:float -> t -> bool
(** Closes the queue (subsequent {!submit}s deliver [overloaded]) and
    waits up to [drain_timeout] seconds (default 10) for in-flight work
    to finish.  [true] when fully drained (workers joined); [false]
    when the timeout cut the drain short — the caller is expected to
    exit the process, as stuck workers cannot be joined. *)

(* The worker pool: OCaml 5 domains executing requests against one
   shared compiled scan plan.

   The plan ([Scanner.t]) is immutable and domain-safe, so workers share
   it without copying or locking — the whole point of the daemon is to
   pay catalog compilation once.  Jobs flow through a [Bqueue]; each job
   carries its own delivery callback so responses go back to whichever
   front-end (stdio, socket connection) submitted the request, in
   completion order, not submission order.

   Robustness contract, per request:
   - an exhausted step deadline is a [Timeout] error response;
   - any other exception is an [Internal] error response;
   in both cases the worker survives and takes the next job. *)

type job = {
  request : Protocol.request;
  deliver : Protocol.response -> unit;
}

type t = {
  scanner : Patchitpy.Scanner.t;
  pack : (int * string) option;
      (* (format version, catalog hash) when the plan came from a rule
         pack — surfaced by [health] so clients can tell which rules a
         daemon is running without access to its command line *)
  queue : job Bqueue.t;
  jobs : int;
  queue_capacity : int;
  in_flight : int Atomic.t;  (* queued + executing, across front-ends *)
  mutable workers : unit Domain.t array;
}

(* --- instruments ---------------------------------------------------------- *)

let requests_counter = Telemetry.Counter.make "server_requests_total"
let overloaded_counter = Telemetry.Counter.make "server_overloaded_total"
let timeouts_counter = Telemetry.Counter.make "server_timeouts_total"
let errors_counter = Telemetry.Counter.make "server_errors_total"
let queue_depth_histogram = Telemetry.Histogram.make "server_queue_depth"

let latency_histogram =
  Telemetry.Histogram.make "server_request_latency_ns"

(* --- request execution ---------------------------------------------------- *)

let health_body t =
  let pack =
    match t.pack with
    | None -> "null"
    | Some (version, hash) ->
      Printf.sprintf "{\"formatVersion\":%d,\"catalogHash\":\"%s\"}" version
        hash
  in
  Printf.sprintf
    "{\"status\":\"ok\",\"schema\":\"%s\",\"jobs\":%d,\"queueDepth\":%d,\"inFlight\":%d,\"rulePack\":%s}"
    Protocol.schema t.jobs (Bqueue.length t.queue)
    (Atomic.get t.in_flight) pack

let stats_body fmt =
  match Telemetry.installed () with
  | None -> (
    match fmt with
    | Protocol.Stats_json -> "{\"enabled\":false}"
    | Protocol.Stats_prometheus -> "\"\"")
  | Some sink -> (
    let report = Telemetry.Report.of_sink sink in
    match fmt with
    | Protocol.Stats_json -> Telemetry.Report.to_json report
    | Protocol.Stats_prometheus ->
      (* multi-line text, embedded as a JSON string to keep framing *)
      "\""
      ^ Telemetry.Report.escape (Telemetry.Report.to_prometheus report)
      ^ "\"")

let execute t (req : Protocol.request) =
  Telemetry.Counter.incr requests_counter;
  let start = Telemetry.now_ns () in
  let reply body =
    Protocol.Reply { id = req.id; kind = Protocol.kind_name req.kind; body }
  in
  let run () =
    match req.kind with
    | Protocol.Scan { file; source } ->
      let findings, warnings =
        Patchitpy.Scanner.scan_with_warnings t.scanner source
      in
      reply (Patchitpy.Jsonout.findings_to_json ~warnings ~file findings)
    | Protocol.Patch { file; source } ->
      reply
        (Patchitpy.Jsonout.patch_to_json ~file
           (Patchitpy.Patcher.patch ~scanner:t.scanner source))
    | Protocol.Health -> reply (health_body t)
    | Protocol.Stats fmt -> reply (stats_body fmt)
  in
  let outcome =
    match
      match req.deadline_steps with
      | None -> run ()
      | Some steps -> Rx.with_step_deadline ~steps run
    with
    | resp -> resp
    | exception Rx.Deadline_exceeded ->
      Telemetry.Counter.incr timeouts_counter;
      Protocol.Error_reply
        {
          id = Some req.id;
          error = Protocol.Timeout;
          message =
            Printf.sprintf
              "request exceeded its deadline of %d matcher steps \
               (partial per-rule telemetry was recorded)"
              (Option.value req.deadline_steps ~default:0);
        }
    | exception e ->
      Telemetry.Counter.incr errors_counter;
      Protocol.Error_reply
        {
          id = Some req.id;
          error = Protocol.Internal;
          message = Printexc.to_string e;
        }
  in
  Telemetry.Histogram.observe latency_histogram (Telemetry.now_ns () - start);
  outcome

(* --- lifecycle ------------------------------------------------------------ *)

let rec worker_loop t =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some job ->
    let response = execute t job.request in
    (* A dead connection must not kill the worker. *)
    (try job.deliver response with _ -> ());
    Atomic.decr t.in_flight;
    worker_loop t

let create ?pack ~jobs ~queue_capacity ~scanner () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      scanner;
      pack;
      queue = Bqueue.create ~capacity:queue_capacity;
      jobs;
      queue_capacity;
      in_flight = Atomic.make 0;
      workers = [||];
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t request ~deliver =
  Telemetry.Histogram.observe queue_depth_histogram (Bqueue.length t.queue);
  Atomic.incr t.in_flight;
  match Bqueue.try_push t.queue { request; deliver } with
  | `Ok -> ()
  | (`Full | `Closed) as why ->
    Atomic.decr t.in_flight;
    Telemetry.Counter.incr overloaded_counter;
    (* [requests_total] counts work executed; a rejected submission only
       shows up in [overloaded_total]. *)
    deliver
      (Protocol.Error_reply
         {
           id = Some request.id;
           error = Protocol.Overloaded;
           message =
             (match why with
             | `Full ->
               Printf.sprintf "submission queue full (capacity %d); retry"
                 t.queue_capacity
             | `Closed -> "server is draining; not accepting requests");
         })

let pending t = Atomic.get t.in_flight

let shutdown ?(drain_timeout = 10.) t =
  Bqueue.close t.queue;
  let deadline = Unix.gettimeofday () +. drain_timeout in
  let rec wait () =
    if Atomic.get t.in_flight = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.005;
      wait ()
    end
  in
  let drained = wait () in
  (* Joining a worker stuck in an over-deadline request would hang past
     the drain budget; the caller exits the process instead. *)
  if drained then Array.iter Domain.join t.workers;
  drained

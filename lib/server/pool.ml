(* The worker pool: OCaml 5 domains executing requests against one
   shared compiled scan plan.

   The plan ([Scanner.t]) is immutable and domain-safe, so workers share
   it without copying or locking — the whole point of the daemon is to
   pay catalog compilation once.  Jobs flow through a [Bqueue]; each job
   carries its own delivery callback so responses go back to whichever
   front-end (stdio, socket connection) submitted the request, in
   completion order, not submission order.

   Robustness contract, per request:
   - an exhausted step deadline is a [Timeout] error response;
   - any other exception is an [Internal] error response;
   in both cases the worker survives and takes the next job. *)

type job = {
  request : Protocol.request;
  deliver : Protocol.response -> unit;
  trace : Telemetry.Trace.t option;
      (* request-lifecycle trace builder, created at submission so the
         queue-wait phase is observable; finished by the worker after
         delivery, on the worker's own flight-recorder ring *)
}

type t = {
  scanner : Patchitpy.Scanner.t;
  pack : (int * string) option;
      (* (format version, catalog hash) when the plan came from a rule
         pack — surfaced by [health] so clients can tell which rules a
         daemon is running without access to its command line *)
  rcache : Rcache.t option;
      (* the content-hash result cache probed at submission; hits are
         delivered synchronously without touching the queue *)
  queue : job Bqueue.t;
  jobs : int;
  queue_capacity : int;
  in_flight : int Atomic.t;  (* queued + executing, across front-ends *)
  mutable workers : unit Domain.t array;
}

(* --- instruments ---------------------------------------------------------- *)

let requests_counter = Telemetry.Counter.make "server_requests_total"
let overloaded_counter = Telemetry.Counter.make "server_overloaded_total"
let timeouts_counter = Telemetry.Counter.make "server_timeouts_total"
let errors_counter = Telemetry.Counter.make "server_errors_total"
let queue_depth_histogram = Telemetry.Histogram.make "server_queue_depth"

let latency_histogram =
  Telemetry.Histogram.make "server_request_latency_ns"

(* --- request execution ---------------------------------------------------- *)

(* Point-in-time cache statistics, surfaced by both [health] and
   [stats]: the process-wide regex compile cache, the DFA cache's
   flush/bail counters, and the fused scan tier's
   candidate/confirm/fallback counters (all 0 when no telemetry sink
   is installed). *)
let result_cache_extras t =
  match t.rcache with
  | None -> "\"resultCache\":{\"enabled\":false}"
  | Some cache ->
    let s = Rcache.stats cache in
    Printf.sprintf
      "\"resultCache\":{\"enabled\":true,\"hits\":%d,\"misses\":%d,\"insertions\":%d,\"evictions\":%d,\"restored\":%d,\"entries\":%d,\"bytes\":%d,\"maxBytes\":%d,\"shards\":%d}"
      s.Rcache.hits s.Rcache.misses s.Rcache.insertions s.Rcache.evictions
      s.Rcache.restored s.Rcache.entries s.Rcache.bytes s.Rcache.max_bytes
      s.Rcache.shards

let cache_extras () =
  let hits, entries = Rx.compile_cache_stats () in
  let ( flushes,
        bails,
        fused_candidates,
        fused_confirms,
        fused_fallbacks,
        warm_dfa,
        warm_fused,
        cache_restored ) =
    match Telemetry.installed () with
    | None -> (0, 0, 0, 0, 0, 0, 0, 0)
    | Some sink ->
      let report = Telemetry.Report.of_sink sink in
      let total name =
        Option.value ~default:0
          (List.assoc_opt name report.Telemetry.Report.counters)
      in
      ( total "rx_dfa_cache_flushes_total",
        total "rx_dfa_fallback_total",
        total "scanner_fused_candidates_total",
        total "scanner_fused_confirms_total",
        total "scanner_fused_fallbacks_total",
        total "rx_dfa_warm_seeded_states_total",
        total "rx_fused_warm_seeded_states_total",
        total "server_cache_restored_entries_total" )
  in
  Printf.sprintf
    "\"rxCompileCache\":{\"hits\":%d,\"entries\":%d},\"dfaCache\":{\"flushes\":%d,\"bails\":%d},\"fusedScan\":{\"candidates\":%d,\"confirms\":%d,\"fallbacks\":%d},\"warmStart\":{\"dfaSeededStates\":%d,\"fusedSeededStates\":%d,\"cacheRestoredEntries\":%d}"
    hits entries flushes bails fused_candidates fused_confirms fused_fallbacks
    warm_dfa warm_fused cache_restored

let health_body t =
  let pack =
    match t.pack with
    | None -> "null"
    | Some (version, hash) ->
      Printf.sprintf "{\"formatVersion\":%d,\"catalogHash\":\"%s\"}" version
        hash
  in
  Printf.sprintf
    "{\"status\":\"ok\",\"schema\":\"%s\",\"jobs\":%d,\"queueDepth\":%d,\"inFlight\":%d,\"rulePack\":%s,%s,%s}"
    Protocol.schema t.jobs (Bqueue.length t.queue)
    (Atomic.get t.in_flight) pack (cache_extras ()) (result_cache_extras t)

(* Nearest-rank percentile over a sorted array; 0 when empty. *)
let percentile_ns sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Queue-wait vs service-time percentiles from the raw flight-recorder
   samples — unlike [server_request_latency_ns], these are exact (no
   power-of-two bucketing) and decompose per phase.  The p99 exemplars
   carry trace ids so a slow request can be pulled with a [trace]
   request and inspected span by span. *)
let latency_breakdown () =
  let module Tr = Telemetry.Trace in
  let records = Tr.records () in
  let n = List.length records in
  if n = 0 then "\"latencyBreakdown\":{\"samples\":0}"
  else begin
    let sorted_by f =
      let a = Array.of_list (List.map f records) in
      Array.sort compare a;
      a
    in
    let pcts a =
      Printf.sprintf "{\"p50\":%d,\"p90\":%d,\"p99\":%d}" (percentile_ns a 0.50)
        (percentile_ns a 0.90) (percentile_ns a 0.99)
    in
    let exemplars =
      String.concat ","
        (List.map
           (fun (r : Tr.record) ->
             Printf.sprintf
               "{\"id\":\"%s\",\"kind\":\"%s\",\"seq\":%d,\"totalNs\":%d,\"queueWaitNs\":%d}"
               (Telemetry.Report.escape r.Tr.tr_id)
               (Telemetry.Report.escape r.Tr.tr_kind)
               r.Tr.tr_seq (Tr.total_ns r) (Tr.queue_wait_ns r))
           (Tr.slowest 3))
    in
    Printf.sprintf
      "\"latencyBreakdown\":{\"samples\":%d,\"queueWaitNs\":%s,\"serviceNs\":%s,\"totalNs\":%s,\"p99Exemplars\":[%s]}"
      n
      (pcts (sorted_by Tr.queue_wait_ns))
      (pcts (sorted_by Tr.service_ns))
      (pcts (sorted_by Tr.total_ns))
      exemplars
  end

(* The raw Prometheus text exposition — the [stats] request embeds it
   as a JSON string to keep NDJSON framing; the HTTP gateway serves it
   verbatim on [GET /metrics]. *)
let prometheus_text () =
  match Telemetry.installed () with
  | None -> ""
  | Some sink ->
    let report = Telemetry.Report.of_sink sink in
    let hits, entries = Rx.compile_cache_stats () in
    let cache_lines =
      Printf.sprintf
        "# HELP rx_compile_cache_hits_total Hits in the process-wide \
         regex compile cache.\n\
         # TYPE rx_compile_cache_hits_total counter\n\
         rx_compile_cache_hits_total %d\n\
         # HELP rx_compile_cache_entries Entries in the process-wide \
         regex compile cache.\n\
         # TYPE rx_compile_cache_entries gauge\n\
         rx_compile_cache_entries %d\n"
        hits entries
    in
    Telemetry.Report.to_prometheus report ^ cache_lines

let stats_body t fmt =
  match Telemetry.installed () with
  | None -> (
    match fmt with
    | Protocol.Stats_json ->
      Printf.sprintf "{\"enabled\":false,%s,%s,%s}" (cache_extras ())
        (result_cache_extras t) (latency_breakdown ())
    | Protocol.Stats_prometheus -> "\"\"")
  | Some sink -> (
    match fmt with
    | Protocol.Stats_json ->
      (* splice cache stats and the flight-recorder latency breakdown
         into the report document (which always ends in '}') *)
      let json = Telemetry.Report.to_json (Telemetry.Report.of_sink sink) in
      String.sub json 0 (String.length json - 1)
      ^ "," ^ cache_extras () ^ "," ^ result_cache_extras t ^ ","
      ^ latency_breakdown () ^ "}"
    | Protocol.Stats_prometheus ->
      (* multi-line text, embedded as a JSON string to keep framing *)
      "\"" ^ Telemetry.Report.escape (prometheus_text ()) ^ "\"")

let execute t (req : Protocol.request) =
  Telemetry.Counter.incr requests_counter;
  let start = Telemetry.now_ns () in
  let reply body =
    Protocol.Reply { id = req.id; kind = Protocol.kind_name req.kind; body }
  in
  let serialize f = Telemetry.Trace.ambient_span Telemetry.Trace.Serialize f in
  let run () =
    match req.kind with
    | Protocol.Scan { file; source } ->
      let findings, warnings =
        Patchitpy.Scanner.scan_with_warnings t.scanner source
      in
      reply
        (serialize (fun () ->
             Patchitpy.Jsonout.findings_to_json ~warnings ~file findings))
    | Protocol.Patch { file; source } ->
      let result = Patchitpy.Patcher.patch ~scanner:t.scanner source in
      reply
        (serialize (fun () -> Patchitpy.Jsonout.patch_to_json ~file result))
    | Protocol.Health -> reply (serialize (fun () -> health_body t))
    | Protocol.Stats fmt -> reply (serialize (fun () -> stats_body t fmt))
    | Protocol.Trace_dump { count; mode; format } ->
      let records =
        match mode with
        | Protocol.Trace_last -> Telemetry.Trace.last count
        | Protocol.Trace_slow -> Telemetry.Trace.slowest count
      in
      reply
        (serialize (fun () ->
             match format with
             | Protocol.Trace_chrome -> Telemetry.Trace.to_chrome records
             | Protocol.Trace_ndjson ->
               (* multi-line NDJSON, embedded as a JSON string *)
               "\""
               ^ Telemetry.Report.escape (Telemetry.Trace.to_ndjson records)
               ^ "\""))
  in
  let outcome =
    match
      match req.deadline_steps with
      | None -> run ()
      | Some steps -> Rx.with_step_deadline ~steps run
    with
    | resp -> resp
    | exception Rx.Deadline_exceeded ->
      Telemetry.Counter.incr timeouts_counter;
      Protocol.Error_reply
        {
          id = Some req.id;
          error = Protocol.Timeout;
          message =
            Printf.sprintf
              "request exceeded its deadline of %d matcher steps \
               (partial per-rule telemetry was recorded)"
              (Option.value req.deadline_steps ~default:0);
        }
    | exception e ->
      Telemetry.Counter.incr errors_counter;
      Protocol.Error_reply
        {
          id = Some req.id;
          error = Protocol.Internal;
          message = Printexc.to_string e;
        }
  in
  Telemetry.Histogram.observe latency_histogram (Telemetry.now_ns () - start);
  outcome

(* --- lifecycle ------------------------------------------------------------ *)

let rec worker_loop t =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some job ->
    let module Tr = Telemetry.Trace in
    let response =
      match job.trace with
      | None -> execute t job.request
      | Some b ->
        let t_pop = Tr.now_ns () in
        Tr.add_span b Tr.Queue_wait ~start:(Tr.marked b) ~stop:t_pop;
        let t_exec = Tr.now_ns () in
        Tr.add_span b Tr.Dispatch ~start:t_pop ~stop:t_exec;
        Tr.with_current b (fun () -> execute t job.request)
    in
    (* A dead connection must not kill the worker. *)
    (try
       match job.trace with
       | None -> job.deliver response
       | Some b -> Tr.span b Tr.Write (fun () -> job.deliver response)
     with _ -> ());
    (* Publish into this worker domain's ring only after delivery, so
       the write phase is part of the record. *)
    (match job.trace with None -> () | Some b -> Tr.finish b);
    Atomic.decr t.in_flight;
    worker_loop t

let create ?pack ?rcache ?warm_boot ~jobs ~queue_capacity ~scanner () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      scanner;
      pack;
      rcache;
      queue = Bqueue.create ~capacity:queue_capacity;
      jobs;
      queue_capacity;
      in_flight = Atomic.make 0;
      workers = [||];
    }
  in
  (* Each worker heats its own domain before taking work: transition
     caches are per-domain, so warm-boot work (rule-pack table seeding,
     canary replay) must run inside the domain it is meant to heat —
     running it once in the spawning domain would leave every worker
     cold. *)
  t.workers <-
    Array.init jobs (fun _ ->
        Domain.spawn (fun () ->
            (match warm_boot with Some f -> f () | None -> ());
            worker_loop t));
  t

let rcache t = t.rcache

let enqueue ?trace t request ~deliver =
  Telemetry.Histogram.observe queue_depth_histogram (Bqueue.length t.queue);
  Atomic.incr t.in_flight;
  let trace =
    match trace with
    | Some _ as b -> b
    | None ->
      (* Front-ends that measure intake pass their own builder; direct
         submitters (tests, bench) still get traced from here. *)
      Telemetry.Trace.start ~id:request.Protocol.id
        ~kind:(Protocol.kind_name request.Protocol.kind)
        ()
  in
  (* Stamp the enqueue time last, right before the push. *)
  (match trace with None -> () | Some b -> Telemetry.Trace.mark b);
  match Bqueue.try_push t.queue { request; deliver; trace } with
  | `Ok -> ()
  | (`Full | `Closed) as why ->
    (* An overloaded submission never reaches a worker domain: abandon
       the builder rather than finish it from this front-end thread
       (finish publishes into the calling domain's ring, and rings are
       single-writer per domain). *)
    Atomic.decr t.in_flight;
    Telemetry.Counter.incr overloaded_counter;
    (* [requests_total] counts work executed; a rejected submission only
       shows up in [overloaded_total]. *)
    deliver
      (Protocol.Error_reply
         {
           id = Some request.id;
           error = Protocol.Overloaded;
           message =
             (match why with
             | `Full ->
               Printf.sprintf "submission queue full (capacity %d); retry"
                 t.queue_capacity
             | `Closed -> "server is draining; not accepting requests");
         })

(* Scan and patch results are deterministic functions of (rule
   catalog, file label, source, options), so they are the cacheable
   kinds; everything else reports live state. *)
let cache_plan (req : Protocol.request) =
  match req.kind with
  | Protocol.Scan { file; source } | Protocol.Patch { file; source } ->
    let options =
      match req.deadline_steps with None -> "" | Some n -> string_of_int n
    in
    Some (Protocol.kind_name req.kind, file, source, options)
  | Protocol.Health | Protocol.Stats _ | Protocol.Trace_dump _ -> None

let submit ?trace t request ~deliver =
  match (t.rcache, cache_plan request) with
  | None, _ | _, None -> enqueue ?trace t request ~deliver
  | Some cache, Some (kind, file, source, options) -> (
    let module Tr = Telemetry.Trace in
    let t0 = if Tr.enabled () then Tr.now_ns () else 0 in
    let key = Rcache.key cache ~kind ~file ~options ~body:source in
    match Rcache.find cache key with
    | Some body ->
      (* A hit is delivered synchronously from the submitting thread —
         no queue, no worker domain.  The trace builder (if any) is
         abandoned, like an overloaded submission: finishing it here
         would publish into the calling domain's ring, and rings are
         single-writer per domain. *)
      ignore (trace : Tr.t option);
      (try deliver (Protocol.Reply { id = request.Protocol.id; kind; body })
       with _ -> ())
    | None ->
      (match trace with
      | None -> ()
      | Some b -> Tr.add_span b Tr.Cache_lookup ~start:t0 ~stop:(Tr.now_ns ()));
      (* Populate on the way out: the wrapper runs on the worker domain
         at delivery time, so the insert costs the submitter nothing. *)
      let deliver response =
        (match response with
        | Protocol.Reply { body; _ } -> Rcache.add cache key body
        | Protocol.Error_reply _ -> ());
        deliver response
      in
      enqueue ?trace t request ~deliver)

let pending t = Atomic.get t.in_flight

let shutdown ?(drain_timeout = 10.) t =
  Bqueue.close t.queue;
  let deadline = Unix.gettimeofday () +. drain_timeout in
  let rec wait () =
    if Atomic.get t.in_flight = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.005;
      wait ()
    end
  in
  let drained = wait () in
  (* Joining a worker stuck in an over-deadline request would hang past
     the drain budget; the caller exits the process instead. *)
  if drained then Array.iter Domain.join t.workers;
  drained

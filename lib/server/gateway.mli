(** The HTTP/1.1 front door: routes requests into the {!Pool}.

    Endpoints:
    - [POST /v1/scan] — body is the source to scan; the response body
      is byte-identical to one-shot [patchitpy scan --json] for the
      same bytes (plus a trailing newline).  The file label comes from
      the [x-patchitpy-file] header (default ["-"]); an optional
      [x-patchitpy-deadline-steps] header bounds matcher steps.
    - [POST /v1/patch] — same shape over the patcher.
    - [GET /v1/health], [GET /v1/stats] — the pool's health and stats
      documents.
    - [GET /metrics] — the raw Prometheus text exposition.

    Scan and patch pass through the pool's result cache and, when a
    {!Quota.t} is configured, per-tenant admission: the tenant is the
    [x-patchitpy-tenant] header when present, else the per-connection
    identity the listener passed in.  Rejections are [429] with a
    [Retry-After] header.

    Pool error replies map onto status codes: [invalid] 400,
    [too_large] 413, [overloaded] 503, [timeout] 504, [error] 500;
    parser errors use {!Http.error_status} and close the connection
    (the byte stream is poisoned). *)

type t

val create : ?quota:Quota.t -> ?limits:Http.limits -> pool:Pool.t -> unit -> t

val handle_connection : t -> peer:string -> Unix.file_descr -> unit
(** Serves one connection to completion (keep-alive loop included) and
    closes the descriptor.  Runs on the calling thread; the listener
    spawns one thread per connection.  [peer] is the fallback tenant
    identity for quota accounting. *)

(** A bounded blocking queue — the server's backpressure primitive.

    Producers never block: {!try_push} on a full queue returns [`Full]
    immediately, which the server surfaces as an [overloaded] error
    response instead of buffering without bound.  Consumers ({!pop})
    block until an item arrives or the queue is closed and drained.
    Safe for any number of producer and consumer domains or threads. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Never blocks.  [`Full] when the queue holds [capacity] items;
    [`Closed] after {!close}. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available and returns it; [None] once the
    queue is closed {e and} drained (remaining items are still handed
    out after {!close}). *)

val close : 'a t -> unit
(** Rejects further pushes and wakes every blocked consumer.  Items
    already queued are still delivered. *)

val length : 'a t -> int
(** Current occupancy (racy by nature; used for observability). *)

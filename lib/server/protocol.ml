(* The serve wire protocol: one JSON document per line, both directions.

   Encoding and decoding are deliberately independent of any socket or
   process machinery so framing is testable (and fuzzable) on plain
   strings.  Two invariants carry the rest of the subsystem:

   - No encoded document contains a raw newline: every string field is
     RFC 8259-escaped (Jsonout), so NDJSON framing survives arbitrary
     payloads, including sources with embedded newlines.

   - A success envelope places [body] {e last}, holding the payload's
     raw bytes.  Clients that care about byte-identity with the one-shot
     CLI (the differential tests, the CI smoke) can slice the body out
     of the line without re-serializing: the body marker byte sequence
     (comma, quoted body key, colon) cannot occur earlier in the
     envelope, because inside every encoded string field the quote
     character is backslash-escaped. *)

let schema = "patchitpy-serve/1"

type stats_format = Stats_json | Stats_prometheus
type trace_mode = Trace_last | Trace_slow
type trace_format = Trace_chrome | Trace_ndjson

(* Bounds the flight-recorder dump a single request can ask for; the
   recorder itself holds at most capacity-per-domain records anyway. *)
let max_trace_count = 4096
let default_trace_count = 32

type kind =
  | Scan of { file : string; source : string }
  | Patch of { file : string; source : string }
  | Health
  | Stats of stats_format
  | Trace_dump of { count : int; mode : trace_mode; format : trace_format }

type request = { id : string; deadline_steps : int option; kind : kind }

type error_kind = Invalid | Too_large | Overloaded | Timeout | Internal

type response =
  | Reply of { id : string; kind : string; body : string }
  | Error_reply of { id : string option; error : error_kind; message : string }

let error_kind_to_string = function
  | Invalid -> "invalid"
  | Too_large -> "too_large"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Internal -> "error"

let error_kind_of_string = function
  | "invalid" -> Some Invalid
  | "too_large" -> Some Too_large
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "error" -> Some Internal
  | _ -> None

let kind_name = function
  | Scan _ -> "scan"
  | Patch _ -> "patch"
  | Health -> "health"
  | Stats _ -> "stats"
  | Trace_dump _ -> "trace"

let trace_mode_name = function Trace_last -> "last" | Trace_slow -> "slow"

let trace_format_name = function
  | Trace_chrome -> "chrome"
  | Trace_ndjson -> "ndjson"

(* --- encoding ------------------------------------------------------------- *)

let str s = "\"" ^ Patchitpy.Jsonout.escape_string s ^ "\""

let encode_request r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":%s,\"id\":%s,\"kind\":\"%s\"" (str schema)
       (str r.id) (kind_name r.kind));
  (match r.deadline_steps with
  | Some n -> Buffer.add_string buf (Printf.sprintf ",\"deadlineSteps\":%d" n)
  | None -> ());
  (match r.kind with
  | Scan { file; source } | Patch { file; source } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"file\":%s,\"source\":%s" (str file) (str source))
  | Health -> ()
  | Stats fmt ->
    Buffer.add_string buf
      (Printf.sprintf ",\"format\":\"%s\""
         (match fmt with Stats_json -> "json" | Stats_prometheus -> "prometheus"))
  | Trace_dump { count; mode; format } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"count\":%d,\"mode\":\"%s\",\"format\":\"%s\"" count
         (trace_mode_name mode) (trace_format_name format)));
  Buffer.add_char buf '}';
  Buffer.contents buf

let encode_response = function
  | Reply { id; kind; body } ->
    Printf.sprintf "{\"schema\":%s,\"id\":%s,\"ok\":true,\"kind\":%s,\"body\":%s}"
      (str schema) (str id) (str kind) body
  | Error_reply { id; error; message } ->
    Printf.sprintf "{\"schema\":%s,\"id\":%s,\"ok\":false,\"error\":\"%s\",\"message\":%s}"
      (str schema)
      (match id with Some id -> str id | None -> "null")
      (error_kind_to_string error) (str message)

(* --- decoding ------------------------------------------------------------- *)

let versioned msg = Printf.sprintf "%s (expected schema %s)" msg schema

let field_string json key =
  Option.bind (Patchitpy.Jsonin.member key json) Patchitpy.Jsonin.to_string

let decode_request line =
  let module J = Patchitpy.Jsonin in
  match J.parse line with
  | Error msg -> Error (None, versioned ("malformed JSON: " ^ msg))
  | Ok json -> (
    (* Recover the id first so even a rejected request gets an error
       response the client can correlate. *)
    let id = Option.bind (J.member "id" json) J.to_string in
    let fail msg = Error (id, msg) in
    match Option.bind (J.member "schema" json) J.to_string with
    | None -> fail (versioned "missing \"schema\"")
    | Some s when s <> schema ->
      fail (versioned (Printf.sprintf "unsupported schema %S" s))
    | Some _ -> (
      match id with
      | None -> fail (versioned "missing string \"id\"")
      | Some id -> (
        let fail msg = Error (Some id, msg) in
        let deadline_steps =
          match Option.bind (J.member "deadlineSteps" json) J.to_number with
          | Some f when Float.is_integer f && f >= 1. && f <= 1e15 ->
            Ok (Some (int_of_float f))
          | Some _ -> Error ()
          | None -> (
            match J.member "deadlineSteps" json with
            | Some _ -> Error ()
            | None -> Ok None)
        in
        match deadline_steps with
        | Error () -> fail "\"deadlineSteps\" must be a positive integer"
        | Ok deadline_steps -> (
          let with_payload make =
            match
              ( Option.bind (J.member "file" json) J.to_string,
                Option.bind (J.member "source" json) J.to_string )
            with
            | Some file, Some source ->
              Ok { id; deadline_steps; kind = make ~file ~source }
            | None, _ -> fail "missing string \"file\""
            | _, None -> fail "missing string \"source\""
          in
          match Option.bind (J.member "kind" json) J.to_string with
          | None -> fail (versioned "missing string \"kind\"")
          | Some "scan" ->
            with_payload (fun ~file ~source -> Scan { file; source })
          | Some "patch" ->
            with_payload (fun ~file ~source -> Patch { file; source })
          | Some "health" -> Ok { id; deadline_steps; kind = Health }
          | Some "stats" -> (
            match field_string json "format" with
            | None | Some "json" ->
              Ok { id; deadline_steps; kind = Stats Stats_json }
            | Some "prometheus" ->
              Ok { id; deadline_steps; kind = Stats Stats_prometheus }
            | Some other ->
              fail
                (Printf.sprintf
                   "unknown stats format %S (json or prometheus)" other))
          | Some "trace" -> (
            let count =
              match Option.bind (J.member "count" json) J.to_number with
              | Some f
                when Float.is_integer f && f >= 1.
                     && f <= float_of_int max_trace_count ->
                Ok (int_of_float f)
              | Some _ -> Error ()
              | None -> (
                match J.member "count" json with
                | Some _ -> Error ()
                | None -> Ok default_trace_count)
            in
            match count with
            | Error () ->
              fail
                (Printf.sprintf "\"count\" must be an integer in [1, %d]"
                   max_trace_count)
            | Ok count -> (
              let mode =
                match field_string json "mode" with
                | None | Some "last" -> Ok Trace_last
                | Some "slow" -> Ok Trace_slow
                | Some other -> Error other
              in
              match mode with
              | Error other ->
                fail
                  (Printf.sprintf "unknown trace mode %S (last or slow)" other)
              | Ok mode -> (
                match field_string json "format" with
                | None | Some "chrome" ->
                  Ok
                    { id;
                      deadline_steps;
                      kind = Trace_dump { count; mode; format = Trace_chrome }
                    }
                | Some "ndjson" ->
                  Ok
                    { id;
                      deadline_steps;
                      kind = Trace_dump { count; mode; format = Trace_ndjson }
                    }
                | Some other ->
                  fail
                    (Printf.sprintf
                       "unknown trace format %S (chrome or ndjson)" other))))
          | Some other ->
            fail
              (versioned
                 (Printf.sprintf
                    "unknown request kind %S (scan, patch, health, stats or \
                     trace)"
                    other))))))

(* The raw bytes of a success envelope's body: everything between the
   first [,"body":] and the closing brace.  See the module comment for
   why the first occurrence is necessarily the envelope's own field. *)
let body_marker = ",\"body\":"

let raw_body line =
  let mlen = String.length body_marker in
  let len = String.length line in
  let rec find i =
    if i + mlen > len then None
    else if String.sub line i mlen = body_marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | Some start when len > start && line.[len - 1] = '}' ->
    Some (String.sub line start (len - start - 1))
  | Some _ | None -> None

let decode_response line =
  let module J = Patchitpy.Jsonin in
  match J.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok json -> (
    match Option.bind (J.member "schema" json) J.to_string with
    | Some s when s <> schema ->
      Error (versioned (Printf.sprintf "unsupported schema %S" s))
    | None -> Error (versioned "missing \"schema\"")
    | Some _ -> (
      match Option.bind (J.member "ok" json) J.to_bool with
      | None -> Error "missing boolean \"ok\""
      | Some true -> (
        match
          ( Option.bind (J.member "id" json) J.to_string,
            Option.bind (J.member "kind" json) J.to_string,
            raw_body line )
        with
        | Some id, Some kind, Some body -> Ok (Reply { id; kind; body })
        | None, _, _ -> Error "missing string \"id\""
        | _, None, _ -> Error "missing string \"kind\""
        | _, _, None -> Error "missing \"body\"")
      | Some false -> (
        let id = Option.bind (J.member "id" json) J.to_string in
        match
          ( Option.bind (J.member "error" json) J.to_string,
            Option.bind (J.member "message" json) J.to_string )
        with
        | Some e, Some message -> (
          match error_kind_of_string e with
          | Some error -> Ok (Error_reply { id; error; message })
          | None -> Error (Printf.sprintf "unknown error kind %S" e))
        | None, _ -> Error "missing string \"error\""
        | _, None -> Error "missing string \"message\"")))

(* See quota.mli.  One global mutex: the critical section is a
   hashtable probe and a few float operations, and admission control
   sits in front of work that costs microseconds at best — striping
   here would be complexity without a measurable win. *)

type bucket = { mutable tokens : float; mutable last_ns : int }

type t = {
  lock : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
  rate : float;  (* tokens per second *)
  burst : float;
  max_tenants : int;
  rejections : int Atomic.t;
}

let rejections_counter = Telemetry.Counter.make "server_quota_rejections_total"

let create ?(max_tenants = 4096) ~rate ~burst () =
  if rate <= 0. || burst <= 0. then
    invalid_arg "Quota.create: rate and burst must be > 0";
  {
    lock = Mutex.create ();
    buckets = Hashtbl.create 64;
    rate;
    burst;
    max_tenants;
    rejections = Atomic.make 0;
  }

let refill t bucket now_ns =
  let elapsed = float_of_int (now_ns - bucket.last_ns) /. 1e9 in
  bucket.tokens <- Float.min t.burst (bucket.tokens +. (elapsed *. t.rate));
  bucket.last_ns <- now_ns

(* Called with the lock held, before admitting a brand-new tenant. *)
let bound_table t now_ns =
  if Hashtbl.length t.buckets >= t.max_tenants then begin
    let idle =
      Hashtbl.fold
        (fun tenant bucket acc ->
          refill t bucket now_ns;
          if bucket.tokens >= t.burst then tenant :: acc else acc)
        t.buckets []
    in
    List.iter (Hashtbl.remove t.buckets) idle;
    if Hashtbl.length t.buckets >= t.max_tenants then
      Hashtbl.reset t.buckets
  end

let check t ~tenant =
  let now_ns = Telemetry.now_ns () in
  let verdict =
    Mutex.protect t.lock (fun () ->
        let bucket =
          match Hashtbl.find_opt t.buckets tenant with
          | Some b ->
            refill t b now_ns;
            b
          | None ->
            bound_table t now_ns;
            let b = { tokens = t.burst; last_ns = now_ns } in
            Hashtbl.replace t.buckets tenant b;
            b
        in
        if bucket.tokens >= 1. then begin
          bucket.tokens <- bucket.tokens -. 1.;
          `Admit
        end
        else `Reject ((1. -. bucket.tokens) /. t.rate))
  in
  (match verdict with
  | `Admit -> ()
  | `Reject _ ->
    Atomic.incr t.rejections;
    Telemetry.Counter.incr rejections_counter);
  verdict

type stats = { tenants : int; rejections : int }

let stats t =
  {
    tenants = Mutex.protect t.lock (fun () -> Hashtbl.length t.buckets);
    rejections = Atomic.get t.rejections;
  }

let write_syscalls_counter = Telemetry.Counter.make "server_write_syscalls_total"

(* The telemetry counter only aggregates when a sink is installed;
   tests also want the raw process-wide count without one. *)
let syscalls = Atomic.make 0

let write_all fd s =
  let bytes = Bytes.unsafe_of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then begin
      match Unix.write fd bytes off (len - off) with
      | n ->
        Atomic.incr syscalls;
        Telemetry.Counter.incr write_syscalls_counter;
        go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
    end
  in
  go 0

let write_syscalls () = Atomic.get syscalls

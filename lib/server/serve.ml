(* The daemon: front-ends, signals and the drain state machine.

   Three front-ends feed one pool.  The stdio front-end reads request
   lines from stdin and writes responses to stdout (behind a mutex —
   workers complete out of order).  The socket front-end accepts
   connections on a Unix-domain socket, one reader thread per
   connection, responses written back to the submitting connection.
   The HTTP front-end accepts loopback TCP connections and routes them
   through {!Gateway}.  Threads do the blocking I/O; domains do the
   scanning — OCaml 5 runs both side by side, and a blocked thread
   costs no worker time.

   Every response, on every front-end, is serialized into one buffer
   and written with a single [Netio.write_all] call under the
   connection's mutex — one write syscall per response in the normal
   case, counted by [server_write_syscalls_total].

   Lifecycle:

     accepting --SIGTERM/SIGINT--> draining --in-flight done--> exit 0
                                       \--drain-timeout-------> exit 0

   Draining closes the listeners (no new connections), closes the pool
   queue (late submissions get an [overloaded] error), and waits for
   in-flight work up to [drain_timeout].  On a server with no
   listeners, EOF on stdin is a batch-mode drain trigger: every
   submitted request is answered, then the process exits 0. *)

type config = {
  socket : string option;
  http_port : int option;
  jobs : int;
  queue_capacity : int;
  drain_timeout : float;
  trace_dir : string option;
  max_request_bytes : int;
  cache_bytes : int;
  cache_file : string option;
  quota : (float * float) option;
}

let default_max_request_bytes = 8 * 1024 * 1024
let default_cache_bytes = 64 * 1024 * 1024

let is_blank line = String.trim line = ""

let handle_line pool line ~deliver =
  (* Read the clock before decoding so the intake span covers the parse;
     the builder itself can only be created after (its id and kind live
     inside the document). *)
  let t0 =
    if Telemetry.Trace.enabled () then Telemetry.Trace.now_ns () else 0
  in
  match Protocol.decode_request line with
  | Ok req ->
    let trace =
      match
        Telemetry.Trace.start ~at:t0 ~id:req.Protocol.id
          ~kind:(Protocol.kind_name req.Protocol.kind)
          ()
      with
      | None -> None
      | Some b ->
        Telemetry.Trace.add_span b Telemetry.Trace.Intake ~start:t0
          ~stop:(Telemetry.Trace.now_ns ());
        Some b
    in
    Pool.submit ?trace pool req ~deliver
  | Error (id, message) ->
    deliver (Protocol.Error_reply { id; error = Protocol.Invalid; message })

let too_large_reply ~max_request_bytes actual =
  Protocol.Error_reply
    {
      id = None;
      error = Protocol.Too_large;
      message =
        Printf.sprintf
          "request frame of %d bytes exceeds the %d-byte limit" actual
          max_request_bytes;
    }

(* --- stdio front-end ------------------------------------------------------ *)

let stdio_loop pool ~max_request_bytes ~stdout_mutex ~stdin_eof =
  let deliver response =
    let line = Protocol.encode_response response ^ "\n" in
    Mutex.protect stdout_mutex (fun () -> Netio.write_all Unix.stdout line)
  in
  (try
     while true do
       let line = input_line stdin in
       if String.length line > max_request_bytes then
         deliver (too_large_reply ~max_request_bytes (String.length line))
       else if not (is_blank line) then handle_line pool line ~deliver
     done
   with End_of_file -> ());
  Atomic.set stdin_eof true

(* --- NDJSON socket front-end ----------------------------------------------- *)

let connection_loop pool ~max_request_bytes fd =
  (* Responses may still be in flight when the client half-closes; the
     fd stays open until every accepted request has been answered. *)
  let pending = Atomic.make 0 in
  let out_mutex = Mutex.create () in
  let deliver response =
    Fun.protect
      ~finally:(fun () -> Atomic.decr pending)
      (fun () ->
        let line = Protocol.encode_response response ^ "\n" in
        try Mutex.protect out_mutex (fun () -> Netio.write_all fd line)
        with Unix.Unix_error _ -> ())
  in
  let process line =
    if not (is_blank line) then begin
      Atomic.incr pending;
      handle_line pool line ~deliver
    end
  in
  let reject actual =
    Atomic.incr pending;
    deliver (too_large_reply ~max_request_bytes actual)
  in
  (* [discarding] means the current frame already exceeded the bound
     and was answered; its remaining bytes are dropped until the next
     newline resynchronizes framing.  The carried [leftover] is thus
     never longer than the bound: memory stays bounded no matter what
     the peer streams. *)
  let leftover = ref "" in
  let discarding = ref false in
  let chunk = Bytes.create 65536 in
  let rec read_loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      let data = !leftover ^ Bytes.sub_string chunk 0 n in
      let rec split = function
        | [] -> leftover := ""
        | [ tail ] ->
          if !discarding then leftover := ""
          else if String.length tail > max_request_bytes then begin
            reject (String.length tail);
            discarding := true;
            leftover := ""
          end
          else leftover := tail (* no newline yet: incomplete *)
        | line :: rest ->
          if !discarding then discarding := false
          else if String.length line > max_request_bytes then
            reject (String.length line)
          else process line;
          split rest
      in
      split (String.split_on_char '\n' data);
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  if not !discarding then process !leftover;
  let rec await_deliveries () =
    if Atomic.get pending > 0 then begin
      Unix.sleepf 0.005;
      await_deliveries ()
    end
  in
  await_deliveries ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let listener_loop pool ~max_request_bytes lfd =
  let rec loop () =
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
      ignore
        (Thread.create (fun () -> connection_loop pool ~max_request_bytes fd) ());
      loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: drain started *)
  in
  loop ()

(* --- HTTP front-end -------------------------------------------------------- *)

let http_listener_loop gateway lfd =
  let rec loop () =
    match Unix.accept ~cloexec:true lfd with
    | fd, addr ->
      (* The per-connection quota fallback identity is the peer
         address without the ephemeral port, so reconnecting does not
         mint a fresh bucket. *)
      let peer =
        match addr with
        | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
        | Unix.ADDR_UNIX p -> p
      in
      ignore
        (Thread.create
           (fun () -> Gateway.handle_connection gateway ~peer fd)
           ());
      loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

(* --- stale socket handling ------------------------------------------------- *)

let claim_unix_socket path =
  if not (Sys.file_exists path) then Ok ()
  else
    match (Unix.lstat path).Unix.st_kind with
    | exception Unix.Unix_error _ -> Ok () (* raced away; bind will tell *)
    | Unix.S_SOCK -> (
      (* Only a connect probe distinguishes a crashed daemon's leftover
         from a live one: the file looks identical either way. *)
      let probe = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (ADDR_UNIX path) with
        | () -> Ok true
        | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> Ok false
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      match live with
      | Ok true ->
        Error
          (Printf.sprintf "a live daemon is already serving on %s" path)
      | Ok false ->
        (* stale: the owning process is gone, nothing answers *)
        (try Sys.remove path with Sys_error _ -> ());
        Ok ()
      | Error msg ->
        Error (Printf.sprintf "cannot probe existing socket %s: %s" path msg))
    | _ ->
      Error
        (Printf.sprintf "%s exists and is not a socket; refusing to remove it"
           path)

(* --- lifecycle ------------------------------------------------------------ *)

let run ?pack ?warm_boot ~scanner config =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Option.map claim_unix_socket config.socket with
  | Some (Error message) ->
    prerr_endline ("serve: " ^ message);
    1
  | None | Some (Ok ()) ->
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    (* The daemon always collects: the [stats] request is the whole
       observability story, and per-domain collectors keep the cost off
       the worker hot path.  The flight recorder is likewise always on —
       fixed-size per-domain rings, overwrite-oldest — so the [trace]
       request and the [stats] latency breakdown work on any live
       daemon, not just one restarted with a flag. *)
    Telemetry.install (Telemetry.create ());
    Telemetry.Trace.enable ();
    let rcache =
      if config.cache_bytes <= 0 then None
      else
        (* The cache is valid for exactly one rule catalog; its salt is
           the catalog's fingerprint however the plan was built. *)
        let salt =
          match pack with
          | Some (_, catalog_hash) -> catalog_hash
          | None -> Rulepack.fingerprint (Patchitpy.Scanner.rules scanner)
        in
        Some (Rcache.create ~max_bytes:config.cache_bytes ~salt ())
    in
    (* Replay the previous run's snapshot before the first request can
       arrive, so a restarted daemon answers repeat traffic from its
       first second.  Refusals (fingerprint mismatch, corruption, no
       file yet) mean an ordinary cold cache, never a failed boot. *)
    (match (rcache, config.cache_file) with
    | Some cache, Some path when Sys.file_exists path -> (
      match Rcache.restore_snapshot cache ~path with
      | Ok n ->
        if n > 0 then
          Printf.eprintf "serve: restored %d cached result(s) from %s\n%!" n
            path
      | Error msg ->
        Printf.eprintf "serve: ignoring cache snapshot %s (%s); starting cold\n%!"
          path msg)
    | _ -> ());
    let pool =
      Pool.create ?pack ?rcache ?warm_boot ~jobs:config.jobs
        ~queue_capacity:config.queue_capacity ~scanner ()
    in
    let max_request_bytes = config.max_request_bytes in
    let stdin_eof = Atomic.make false in
    let stdout_mutex = Mutex.create () in
    ignore
      (Thread.create
         (fun () -> stdio_loop pool ~max_request_bytes ~stdout_mutex ~stdin_eof)
         ());
    let listener =
      match config.socket with
      | None -> None
      | Some path ->
        let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        Unix.bind lfd (ADDR_UNIX path);
        Unix.listen lfd 64;
        ignore
          (Thread.create
             (fun () -> listener_loop pool ~max_request_bytes lfd)
             ());
        Some (path, lfd)
    in
    let http_listener =
      match config.http_port with
      | None -> None
      | Some port ->
        let quota =
          Option.map
            (fun (rate, burst) -> Quota.create ~rate ~burst ())
            config.quota
        in
        let limits =
          { Http.default_limits with max_body_bytes = max_request_bytes }
        in
        let gateway = Gateway.create ?quota ~limits ~pool () in
        let lfd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        Unix.setsockopt lfd SO_REUSEADDR true;
        Unix.bind lfd (ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen lfd 64;
        ignore (Thread.create (fun () -> http_listener_loop gateway lfd) ());
        Some lfd
    in
    let rec serve_until_stop () =
      if Atomic.get stop then ()
      else if
        listener = None && http_listener = None
        && Atomic.get stdin_eof
        && Pool.pending pool = 0
      then () (* stdio batch mode: all input answered *)
      else begin
        (try Unix.sleepf 0.05 with Unix.Unix_error (EINTR, _, _) -> ());
        serve_until_stop ()
      end
    in
    serve_until_stop ();
    (match listener with
    | Some (path, lfd) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    (match http_listener with
    | Some lfd -> ( try Unix.close lfd with Unix.Unix_error _ -> ())
    | None -> ());
    let (_drained : bool) =
      Pool.shutdown ~drain_timeout:config.drain_timeout pool
    in
    (* Workers have quiesced, so the cache is stable: persist it for
       the next boot.  Best-effort, like the trace dump below — a
       failed snapshot must not turn a clean drain into a non-zero
       exit. *)
    (match (rcache, config.cache_file) with
    | Some cache, Some path -> (
      match Rcache.save_snapshot cache ~path with
      | Ok _ -> ()
      | Error msg ->
        Printf.eprintf "serve: could not save cache snapshot %s: %s\n%!" path
          msg)
    | _ -> ());
    (* Workers have quiesced (or been abandoned past the drain budget);
       dump whatever the flight recorder still holds.  Best-effort: a
       failed dump must not turn a clean drain into a non-zero exit. *)
    (match config.trace_dir with
    | None -> ()
    | Some dir ->
      (try
         (try Unix.mkdir dir 0o755
          with Unix.Unix_error (EEXIST, _, _) -> ());
         let records = Telemetry.Trace.records () in
         let write_file path contents =
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () -> output_string oc contents)
         in
         let stem =
           Filename.concat dir (Printf.sprintf "serve-%d" (Unix.getpid ()))
         in
         write_file (stem ^ ".trace.json")
           (Telemetry.Trace.to_chrome records ^ "\n");
         write_file (stem ^ ".ndjson") (Telemetry.Trace.to_ndjson records)
       with _ -> ()));
    Telemetry.Trace.disable ();
    Telemetry.uninstall ();
    0

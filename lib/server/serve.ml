(* The daemon: front-ends, signals and the drain state machine.

   Two front-ends feed one pool.  The stdio front-end reads request
   lines from stdin and writes responses to stdout (behind a mutex —
   workers complete out of order).  The socket front-end accepts
   connections on a Unix-domain socket, one reader thread per
   connection, responses written back to the submitting connection.
   Threads do the blocking I/O; domains do the scanning — OCaml 5 runs
   both side by side, and a blocked thread costs no worker time.

   Lifecycle:

     accepting --SIGTERM/SIGINT--> draining --in-flight done--> exit 0
                                       \--drain-timeout-------> exit 0

   Draining closes the listener (no new connections), closes the pool
   queue (late submissions get an [overloaded] error), and waits for
   in-flight work up to [drain_timeout].  On a stdio-only server, EOF
   on stdin is a batch-mode drain trigger: every submitted request is
   answered, then the process exits 0. *)

type config = {
  socket : string option;
  jobs : int;
  queue_capacity : int;
  drain_timeout : float;
  trace_dir : string option;
}

let is_blank line = String.trim line = ""

let handle_line pool line ~deliver =
  (* Read the clock before decoding so the intake span covers the parse;
     the builder itself can only be created after (its id and kind live
     inside the document). *)
  let t0 =
    if Telemetry.Trace.enabled () then Telemetry.Trace.now_ns () else 0
  in
  match Protocol.decode_request line with
  | Ok req ->
    let trace =
      match
        Telemetry.Trace.start ~at:t0 ~id:req.Protocol.id
          ~kind:(Protocol.kind_name req.Protocol.kind)
          ()
      with
      | None -> None
      | Some b ->
        Telemetry.Trace.add_span b Telemetry.Trace.Intake ~start:t0
          ~stop:(Telemetry.Trace.now_ns ());
        Some b
    in
    Pool.submit ?trace pool req ~deliver
  | Error (id, message) ->
    deliver (Protocol.Error_reply { id; error = Protocol.Invalid; message })

let write_all fd s =
  let bytes = Bytes.unsafe_of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then go (off + Unix.write fd bytes off (len - off))
  in
  go 0

(* --- stdio front-end ------------------------------------------------------ *)

let stdio_loop pool ~stdout_mutex ~stdin_eof =
  let deliver response =
    Mutex.protect stdout_mutex (fun () ->
        print_string (Protocol.encode_response response);
        print_newline ();
        flush stdout)
  in
  (try
     while true do
       let line = input_line stdin in
       if not (is_blank line) then handle_line pool line ~deliver
     done
   with End_of_file -> ());
  Atomic.set stdin_eof true

(* --- socket front-end ----------------------------------------------------- *)

let connection_loop pool fd =
  (* Responses may still be in flight when the client half-closes; the
     fd stays open until every accepted request has been answered. *)
  let pending = Atomic.make 0 in
  let out_mutex = Mutex.create () in
  let deliver response =
    Fun.protect
      ~finally:(fun () -> Atomic.decr pending)
      (fun () ->
        let line = Protocol.encode_response response ^ "\n" in
        try Mutex.protect out_mutex (fun () -> write_all fd line)
        with Unix.Unix_error _ -> ())
  in
  let process line =
    if not (is_blank line) then begin
      Atomic.incr pending;
      handle_line pool line ~deliver
    end
  in
  let leftover = ref "" in
  let chunk = Bytes.create 65536 in
  let rec read_loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      let data = !leftover ^ Bytes.sub_string chunk 0 n in
      let rec split = function
        | [] -> leftover := ""
        | [ tail ] -> leftover := tail (* no newline yet: incomplete *)
        | line :: rest ->
          process line;
          split rest
      in
      split (String.split_on_char '\n' data);
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  process !leftover;
  let rec await_deliveries () =
    if Atomic.get pending > 0 then begin
      Unix.sleepf 0.005;
      await_deliveries ()
    end
  in
  await_deliveries ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let listener_loop pool lfd =
  let rec loop () =
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
      ignore (Thread.create (fun () -> connection_loop pool fd) ());
      loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: drain started *)
  in
  loop ()

(* --- lifecycle ------------------------------------------------------------ *)

let run ?pack ~scanner config =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* The daemon always collects: the [stats] request is the whole
     observability story, and per-domain collectors keep the cost off
     the worker hot path.  The flight recorder is likewise always on —
     fixed-size per-domain rings, overwrite-oldest — so the [trace]
     request and the [stats] latency breakdown work on any live
     daemon, not just one restarted with a flag. *)
  Telemetry.install (Telemetry.create ());
  Telemetry.Trace.enable ();
  let pool =
    Pool.create ?pack ~jobs:config.jobs ~queue_capacity:config.queue_capacity
      ~scanner ()
  in
  let stdin_eof = Atomic.make false in
  let stdout_mutex = Mutex.create () in
  ignore (Thread.create (fun () -> stdio_loop pool ~stdout_mutex ~stdin_eof) ());
  let listener =
    match config.socket with
    | None -> None
    | Some path ->
      if Sys.file_exists path then Sys.remove path;
      let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind lfd (ADDR_UNIX path);
      Unix.listen lfd 64;
      ignore (Thread.create (fun () -> listener_loop pool lfd) ());
      Some (path, lfd)
  in
  let rec serve_until_stop () =
    if Atomic.get stop then ()
    else if listener = None && Atomic.get stdin_eof && Pool.pending pool = 0
    then () (* stdio batch mode: all input answered *)
    else begin
      (try Unix.sleepf 0.05 with Unix.Unix_error (EINTR, _, _) -> ());
      serve_until_stop ()
    end
  in
  serve_until_stop ();
  (match listener with
  | Some (path, lfd) ->
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    (try Sys.remove path with Sys_error _ -> ())
  | None -> ());
  let (_drained : bool) =
    Pool.shutdown ~drain_timeout:config.drain_timeout pool
  in
  (* Workers have quiesced (or been abandoned past the drain budget);
     dump whatever the flight recorder still holds.  Best-effort: a
     failed dump must not turn a clean drain into a non-zero exit. *)
  (match config.trace_dir with
  | None -> ()
  | Some dir ->
    (try
       (try Unix.mkdir dir 0o755
        with Unix.Unix_error (EEXIST, _, _) -> ());
       let records = Telemetry.Trace.records () in
       let write_file path contents =
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc contents)
       in
       let stem =
         Filename.concat dir
           (Printf.sprintf "serve-%d" (Unix.getpid ()))
       in
       write_file (stem ^ ".trace.json")
         (Telemetry.Trace.to_chrome records ^ "\n");
       write_file (stem ^ ".ndjson") (Telemetry.Trace.to_ndjson records)
     with _ -> ()));
  Telemetry.Trace.disable ();
  Telemetry.uninstall ();
  0

(** The content-hash result cache in front of the worker pool.

    AI code generators emit near-duplicate snippets at enormous rates,
    so the daemon keeps finished response bodies keyed by what produced
    them: the request body's XXH64, bound to the rule-pack fingerprint,
    the request kind, the file label and the request options.  A hit
    returns the exact bytes the scanner produced the first time —
    responses are deterministic for a fixed rule catalog — without
    touching a worker domain or the queue.

    Concurrency: the table is sharded and lock-striped; each shard is
    an independent LRU with its own byte budget, so front-end threads
    and worker domains probe and insert concurrently with at most
    one-shard contention.  Keys are 128 bits (two independent XXH64
    passes), so collisions are ignorable without storing or comparing
    request bodies.

    Invalidation: {!invalidate} swaps the fingerprint salt and clears
    every shard.  Keys minted before the swap carry the old generation
    and are refused by {!add}, so a scan that raced the invalidation
    cannot resurrect a stale result.

    Instruments: [server_cache_hits_total], [server_cache_misses_total],
    [server_cache_insertions_total], [server_cache_evictions_total]. *)

type t

val create : ?shards:int -> max_bytes:int -> salt:string -> unit -> t
(** [shards] (default 8, rounded up to a power of two) locks stripe the
    table; [max_bytes] is the whole-cache budget for cached response
    bytes plus per-entry overhead, split evenly across shards; [salt]
    is the rule-pack fingerprint the cached results are valid for. *)

type key

val key :
  t -> kind:string -> file:string -> options:string -> body:string -> key
(** Hashes once for the whole request round trip: probe with the key,
    and insert the computed response under the same key after a miss.
    The key binds the current salt and generation. *)

val find : t -> key -> string option
(** The cached response body, promoting the entry to most recently
    used; [None] on miss. *)

val add : t -> key -> string -> unit
(** Caches a response body under [key], evicting least-recently-used
    entries while the shard is over budget.  Dropped silently when the
    body alone exceeds the shard budget or the key's generation is no
    longer current (an {!invalidate} happened since {!key}). *)

val invalidate : t -> salt:string -> unit
(** Swap to a new rule-pack fingerprint: clears every shard and bumps
    the generation so in-flight keys minted under the old salt cannot
    be inserted afterwards. *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  restored : int;  (** entries replayed from a snapshot at boot *)
  entries : int;
  bytes : int;  (** accounted bytes currently held, overhead included *)
  max_bytes : int;
  shards : int;
}

val stats : t -> stats

val save_snapshot : t -> path:string -> (int, string) result
(** Persists the cache — salt, generation and every entry (128-bit
    key + response body), checksummed — to [path] via a temporary file
    and rename, so a crash mid-write never leaves a torn snapshot.
    Returns the number of entries written.  The serve drain path calls
    this best-effort on graceful shutdown. *)

val restore_snapshot : t -> path:string -> (int, string) result
(** Replays a {!save_snapshot} file into the cache, re-keying entries
    under the live generation, and counts them in [stats.restored] and
    [server_cache_restored_entries_total].  Refuses — [Error], cache
    untouched — a snapshot whose fingerprint salt differs from the
    cache's, and any truncated, corrupt or version-skewed file; the
    caller starts cold in every refusal case.  The whole file is
    validated before the first entry lands, so a forged tail cannot
    leave a half-replayed snapshot behind. *)

/* Clocks for the instrumented hot paths.
 *
 * Both return unboxed OCaml ints: the per-candidate-rule timing chain
 * reads a clock once per rule, and a boxed Int64 result would allocate
 * on every read and push the telemetry-on overhead past its documented
 * <= 2% budget.  62 bits of nanoseconds overflow after ~146 years.
 *
 * tele_ticks is the cheap time source for quantities that are only
 * *summed* (per-rule attributed time): raw TSC on x86, where a read is
 * a few ns against ~30 ns for clock_gettime, converted to ns at report
 * time against a calibration run.  Elsewhere it falls back to the
 * monotonic clock, making the calibration factor ~1. */

#include <caml/mlvalues.h>
#include <time.h>

intnat tele_now_ns_unboxed(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec;
}

CAMLprim value tele_now_ns(value unit)
{
  (void)unit;
  return Val_long(tele_now_ns_unboxed());
}

#if defined(__x86_64__)
#include <x86intrin.h>

intnat tele_ticks_unboxed(void)
{
  return (intnat)__rdtsc();
}
#else
intnat tele_ticks_unboxed(void)
{
  return tele_now_ns_unboxed();
}
#endif

CAMLprim value tele_ticks(value unit)
{
  (void)unit;
  return Val_long(tele_ticks_unboxed());
}

(* Metrics and tracing with per-domain collectors.

   Layout: every instrument (counter / histogram) owns a process-wide
   dense slot allocated at [make] time; a collector is one domain's
   slot-indexed arrays plus its per-scanner rule blocks.  Recording is
   therefore [Atomic.get] + [Domain.DLS.get] + an array store — no
   locks and no allocation on the hot path.  The only mutexes are
   around slot allocation (once per instrument) and collector
   registration (once per domain per sink), both off the hot path. *)

external now_ns : unit -> (int[@untagged]) = "tele_now_ns" "tele_now_ns_unboxed"
[@@noalloc]

external now_ticks : unit -> (int[@untagged]) = "tele_ticks" "tele_ticks_unboxed"
[@@noalloc]

(* ns per tick, calibrated lazily: the conversion only happens at
   report time, which can afford the 200 us spin; recording paths
   store raw ticks.  On non-x86 hosts ticks already are ns and the
   factor comes out ~1. *)
let ns_per_tick =
  lazy
    (let t0 = now_ns () and c0 = now_ticks () in
     while now_ns () - t0 < 200_000 do
       ()
     done;
     let t1 = now_ns () and c1 = now_ticks () in
     if c1 = c0 then 1.0 else float_of_int (t1 - t0) /. float_of_int (c1 - c0))

let ticks_to_ns t =
  int_of_float ((float_of_int t *. Lazy.force ns_per_tick) +. 0.5)

(* Request-lifecycle tracing lives in its own compilation unit (it must
   not depend on this one); re-exported here so the library surface
   stays a single module. *)
module Trace = Trace

(* --- instrument registry ------------------------------------------------- *)

let registry_lock = Mutex.create ()
let counter_names : string list ref = ref [] (* newest first; slot = index from end *)
let counter_slots : (string, int) Hashtbl.t = Hashtbl.create 16
let histo_names : string list ref = ref []
let histo_slots : (string, int) Hashtbl.t = Hashtbl.create 16

(* HELP strings for the Prometheus exposition; instruments register
   one at [make] time (optional — the exposition falls back to a
   generic line, since # HELP is mandatory for well-formed scrapes). *)
let help_texts : (string, string) Hashtbl.t = Hashtbl.create 16

let intern ?help slots names name =
  Mutex.protect registry_lock (fun () ->
      (match help with
      | Some text -> Hashtbl.replace help_texts name text
      | None -> ());
      match Hashtbl.find_opt slots name with
      | Some slot -> slot
      | None ->
        let slot = Hashtbl.length slots in
        Hashtbl.replace slots name slot;
        names := name :: !names;
        slot)

let help_of name =
  Mutex.protect registry_lock (fun () -> Hashtbl.find_opt help_texts name)

let registered names () =
  (* slot order: the list is newest-first *)
  Mutex.protect registry_lock (fun () -> Array.of_list (List.rev !names))

(* --- rule-set definitions ------------------------------------------------ *)

module Rules0 = struct
  type def = { stamp : int; def_ids : string array }

  let next_stamp = Atomic.make 0

  let define ids = { stamp = Atomic.fetch_and_add next_stamp 1; def_ids = ids }
  let ids d = d.def_ids

  type block = {
    mutable scans : int;
    time_ns : int array;
    steps : int array;
    candidates : int array;
    matched : int array;
    suppressed : int array;
    findings : int array;
    budget_exhausted : int array;
  }

  let fresh_block n =
    {
      scans = 0;
      time_ns = Array.make n 0;
      steps = Array.make n 0;
      candidates = Array.make n 0;
      matched = Array.make n 0;
      suppressed = Array.make n 0;
      findings = Array.make n 0;
      budget_exhausted = Array.make n 0;
    }
end

(* --- collectors and sinks ------------------------------------------------ *)

type collector = {
  mutable c_counters : int array;  (* counter slot -> value *)
  mutable c_histos : int array array;  (* histo slot -> 32 buckets + sum *)
  c_blocks : (int, Rules0.def * Rules0.block) Hashtbl.t;  (* by stamp *)
}

let n_buckets = 32

let fresh_collector () =
  {
    c_counters = Array.make (max 8 (Hashtbl.length counter_slots)) 0;
    c_histos = Array.make (max 8 (Hashtbl.length histo_slots)) [||];
    c_blocks = Hashtbl.create 4;
  }

type sink = {
  lock : Mutex.t;
  mutable collectors : collector list;
  key : collector Domain.DLS.key;
}

let create () =
  let holder = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = fresh_collector () in
        (match !holder with
        | Some s -> Mutex.protect s.lock (fun () -> s.collectors <- c :: s.collectors)
        | None -> ());
        c)
  in
  let s = { lock = Mutex.create (); collectors = []; key } in
  holder := Some s;
  s

let current : sink option Atomic.t = Atomic.make None

let install s = Atomic.set current (Some s)
let uninstall () = Atomic.set current None
let installed () = Atomic.get current
let enabled () = Atomic.get current <> None

let with_sink s f =
  let previous = Atomic.get current in
  Atomic.set current (Some s);
  Fun.protect ~finally:(fun () -> Atomic.set current previous) f

let collector_of s = Domain.DLS.get s.key

(* A recorder is this domain's collector for the installed sink,
   fetched once and then written through directly: instrument sites
   that record several values per event (the DFA publish path) pay the
   [Atomic.get] + [Domain.DLS.get] entry cost once instead of per
   value. *)
type recorder = collector

let recorder () =
  match Atomic.get current with
  | None -> None
  | Some s -> Some (collector_of s)

(* --- counters ------------------------------------------------------------ *)

module Counter = struct
  type t = { slot : int }

  let make ?help name = { slot = intern ?help counter_slots counter_names name }

  let record (col : recorder) c by =
    let n = Array.length col.c_counters in
    if c.slot >= n then begin
      let grown = Array.make (max (c.slot + 1) (2 * n)) 0 in
      Array.blit col.c_counters 0 grown 0 n;
      col.c_counters <- grown
    end;
    Array.unsafe_set col.c_counters c.slot
      (Array.unsafe_get col.c_counters c.slot + by)

  let incr ?(by = 1) c =
    match Atomic.get current with
    | None -> ()
    | Some s -> record (collector_of s) c by
end

(* --- histograms ---------------------------------------------------------- *)

(* Bucket [i] holds values in [2^i, 2^(i+1)); bucket 0 absorbs v <= 1,
   the last bucket absorbs the tail.  Data layout per slot: 32 bucket
   counts followed by the running sum. *)
module Histogram = struct
  type t = { slot : int }

  let bucket_count = n_buckets

  let make ?help name = { slot = intern ?help histo_slots histo_names name }

  (* floor(log2 v) by binary descent: six branches whatever the value,
     where the shift-loop version cost one iteration per bit and showed
     up in the instrumented scan path (steps histograms observe values
     in the thousands). *)
  let bucket_of v =
    if v <= 1 then 0
    else begin
      let i = ref 0 and v = ref v in
      if !v >= 1 lsl 32 then begin i := !i + 32; v := !v lsr 32 end;
      if !v >= 1 lsl 16 then begin i := !i + 16; v := !v lsr 16 end;
      if !v >= 1 lsl 8 then begin i := !i + 8; v := !v lsr 8 end;
      if !v >= 1 lsl 4 then begin i := !i + 4; v := !v lsr 4 end;
      if !v >= 1 lsl 2 then begin i := !i + 2; v := !v lsr 2 end;
      if !v >= 2 then incr i;
      min !i (n_buckets - 1)
    end

  let record (col : recorder) h v =
    let v = if v < 0 then 0 else v in
    let n = Array.length col.c_histos in
    if h.slot >= n then begin
      let grown = Array.make (max (h.slot + 1) (2 * n)) [||] in
      Array.blit col.c_histos 0 grown 0 n;
      col.c_histos <- grown
    end;
    let data =
      match Array.unsafe_get col.c_histos h.slot with
      | [||] ->
        let d = Array.make (n_buckets + 1) 0 in
        col.c_histos.(h.slot) <- d;
        d
      | d -> d
    in
    (* data is always n_buckets + 1 long and bucket_of < n_buckets *)
    let b = bucket_of v in
    Array.unsafe_set data b (Array.unsafe_get data b + 1);
    Array.unsafe_set data n_buckets (Array.unsafe_get data n_buckets + v)

  let observe h v =
    match Atomic.get current with
    | None -> ()
    | Some s -> record (collector_of s) h v
end

module Span = struct
  let record h f =
    match Atomic.get current with
    | None -> f ()
    | Some _ ->
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () -> Histogram.observe h (now_ns () - t0))
        f
end

(* --- per-rule blocks ----------------------------------------------------- *)

module Rules = struct
  include Rules0

  let block s (def : def) =
    let col = collector_of s in
    match Hashtbl.find_opt col.c_blocks def.stamp with
    | Some (_, b) -> b
    | None ->
      let b = fresh_block (Array.length def.def_ids) in
      Hashtbl.replace col.c_blocks def.stamp (def, b);
      b
end

(* --- merged reports ------------------------------------------------------ *)

module Report = struct
  type histogram = {
    h_name : string;
    h_count : int;
    h_sum : int;
    h_buckets : int array;
  }

  type ruleset = { r_ids : string array; r_scans : int; r_block : Rules.block }

  type t = {
    counters : (string * int) list;
    histograms : histogram list;
    rulesets : ruleset list;
  }

  let add_into dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

  let of_sink s =
    let collectors = Mutex.protect s.lock (fun () -> s.collectors) in
    let counter_names = registered counter_names () in
    let histo_names = registered histo_names () in
    let counters =
      Array.to_list
        (Array.mapi
           (fun slot name ->
             let total =
               List.fold_left
                 (fun acc col ->
                   if slot < Array.length col.c_counters then
                     acc + col.c_counters.(slot)
                   else acc)
                 0 collectors
             in
             (name, total))
           counter_names)
      |> List.sort compare
    in
    let histograms =
      Array.to_list
        (Array.mapi
           (fun slot name ->
             let buckets = Array.make n_buckets 0 in
             let sum = ref 0 in
             List.iter
               (fun col ->
                 if slot < Array.length col.c_histos then
                   match col.c_histos.(slot) with
                   | [||] -> ()
                   | data ->
                     for i = 0 to n_buckets - 1 do
                       buckets.(i) <- buckets.(i) + data.(i)
                     done;
                     sum := !sum + data.(n_buckets))
               collectors;
             {
               h_name = name;
               h_count = Array.fold_left ( + ) 0 buckets;
               h_sum = !sum;
               h_buckets = buckets;
             })
           histo_names)
      |> List.sort (fun a b -> compare a.h_name b.h_name)
    in
    let merged : (int, Rules.def * Rules.block) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun col ->
        Hashtbl.iter
          (fun stamp ((def : Rules.def), (b : Rules.block)) ->
            let acc =
              match Hashtbl.find_opt merged stamp with
              | Some (_, acc) -> acc
              | None ->
                let acc = Rules.fresh_block (Array.length (Rules.ids def)) in
                Hashtbl.replace merged stamp (def, acc);
                acc
            in
            acc.scans <- acc.scans + b.scans;
            add_into acc.time_ns b.time_ns;
            add_into acc.steps b.steps;
            add_into acc.candidates b.candidates;
            add_into acc.matched b.matched;
            add_into acc.suppressed b.suppressed;
            add_into acc.findings b.findings;
            add_into acc.budget_exhausted b.budget_exhausted)
          col.c_blocks)
      collectors;
    (* recorded as raw ticks on the hot path; reports are in ns *)
    Hashtbl.iter
      (fun _ ((_ : Rules.def), (b : Rules.block)) ->
        Array.iteri (fun i t -> b.time_ns.(i) <- ticks_to_ns t) b.time_ns)
      merged;
    let rulesets =
      Hashtbl.fold (fun stamp (def, b) acc -> (stamp, def, b) :: acc) merged []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      |> List.map (fun (_, def, (b : Rules.block)) ->
             { r_ids = Rules.ids def; r_scans = b.scans; r_block = b })
    in
    { counters; histograms; rulesets }

  (* --- serialization ----------------------------------------------------- *)

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_rule_fields (b : Rules.block) i =
    Printf.sprintf
      "\"candidates\":%d,\"matched\":%d,\"suppressed\":%d,\"findings\":%d,\
       \"steps\":%d,\"budgetExhausted\":%d,\"timeNs\":%d"
      b.candidates.(i) b.matched.(i) b.suppressed.(i) b.findings.(i)
      b.steps.(i) b.budget_exhausted.(i) b.time_ns.(i)

  let to_json t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"schema\":\"patchitpy-telemetry/1\",\"counters\":{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape name) v))
      t.counters;
    Buffer.add_string buf "},\"histograms\":[";
    List.iteri
      (fun i h ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"count\":%d,\"sum\":%d,\"buckets\":["
             (escape h.h_name) h.h_count h.h_sum);
        Array.iteri
          (fun j n ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int n))
          h.h_buckets;
        Buffer.add_string buf "]}")
      t.histograms;
    Buffer.add_string buf "],\"rulesets\":[";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "{\"scans\":%d,\"rules\":[" r.r_scans);
        Array.iteri
          (fun j id ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"id\":\"%s\",%s}" (escape id)
                 (json_rule_fields r.r_block j)))
          r.r_ids;
        Buffer.add_string buf "]}")
      t.rulesets;
    Buffer.add_string buf "]}";
    Buffer.contents buf

  (* Prometheus text exposition.  Metric names we mint ourselves; rule
     ids only appear as label values and HELP text, each with the
     format's own escaping — which is NOT JSON's: label values escape
     backslash, double-quote and newline (a \u sequence would be taken
     literally by a scraper); HELP text escapes only backslash and
     newline. *)
  let prometheus_label_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let prometheus_help_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_prometheus t =
    let buf = Buffer.create 4096 in
    let label_escape = prometheus_label_escape in
    let help_line name fallback =
      let text =
        match help_of name with Some text -> text | None -> fallback
      in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" name (prometheus_help_escape text))
    in
    List.iter
      (fun (name, v) ->
        help_line name (Printf.sprintf "PatchitPy counter %s." name);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v))
      t.counters;
    List.iter
      (fun h ->
        help_line h.h_name
          (Printf.sprintf "PatchitPy histogram %s (power-of-two buckets)."
             h.h_name);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
        let cumulative = ref 0 in
        Array.iteri
          (fun i n ->
            cumulative := !cumulative + n;
            if i < n_buckets - 1 then
              (* bucket i covers values <= 2^(i+1)-1 *)
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" h.h_name
                   ((1 lsl (i + 1)) - 1)
                   !cumulative))
          h.h_buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n"
             h.h_name h.h_count h.h_name h.h_sum h.h_name h.h_count))
      t.histograms;
    if t.rulesets <> [] then
      Buffer.add_string buf
        "# HELP patchitpy_scanner_scans_total Scans recorded per registered \
         rule set.\n\
         # TYPE patchitpy_scanner_scans_total counter\n";
    List.iteri
      (fun set r ->
        Buffer.add_string buf
          (Printf.sprintf "patchitpy_scanner_scans_total{set=\"%d\"} %d\n" set
             r.r_scans);
        let series name (arr : int array) =
          (* HELP/TYPE must appear once per metric name; the series
             names repeat across rule sets. *)
          if set = 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "# HELP patchitpy_scanner_rule_%s_total Per-rule %s, summed \
                  across scans.\n\
                  # TYPE patchitpy_scanner_rule_%s_total counter\n"
                 name
                 (String.map (fun c -> if c = '_' then ' ' else c) name)
                 name);
          Array.iteri
            (fun i id ->
              Buffer.add_string buf
                (Printf.sprintf
                   "patchitpy_scanner_rule_%s_total{set=\"%d\",rule=\"%s\"} %d\n"
                   name set (label_escape id) arr.(i)))
            r.r_ids
        in
        series "candidates" r.r_block.Rules.candidates;
        series "matched" r.r_block.Rules.matched;
        series "suppressed" r.r_block.Rules.suppressed;
        series "findings" r.r_block.Rules.findings;
        series "steps" r.r_block.Rules.steps;
        series "budget_exhausted" r.r_block.Rules.budget_exhausted;
        series "time_ns" r.r_block.Rules.time_ns)
      t.rulesets;
    Buffer.contents buf
end

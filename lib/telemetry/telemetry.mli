(** Near-zero-overhead metrics and tracing.

    The measurement layer behind the scan/patch hot paths: monotone
    counters, latency histograms with fixed log-spaced buckets,
    monotonic-clock spans, and dense per-rule statistic blocks for
    compiled scan plans.

    {2 Cost model}

    Telemetry is compiled in but off by default.  Every instrument
    checks one process-wide [Atomic] for the installed {!sink}; with no
    sink installed an event is a single load-and-branch, so the
    instrumented fast path is indistinguishable from an uninstrumented
    one.  With a sink installed, events land in a {e per-domain}
    collector (no locks, no contention on the hot path): counters are
    dense [int array] slots, histogram observations are a bucket-index
    computation plus two increments, and per-rule blocks are plain
    array stores indexed by rule position.

    {2 Domain model}

    Each domain that records into a sink gets its own collector,
    created on first use through [Domain.DLS] and registered with the
    sink under a mutex.  Nothing is shared between recording domains,
    so [Experiments.Par.map_samples --jobs N] can fan work out freely;
    {!Report.of_sink} merges every domain's collector by summation.
    Sums are commutative, so every deterministic quantity (counts,
    steps, bucket tallies) merges to the same value at any job count —
    only wall-clock sums vary run to run. *)

type sink
(** A collection target: the set of per-domain collectors events are
    recorded into while the sink is installed. *)

val create : unit -> sink
(** A fresh, empty sink.  Creating a sink does not install it. *)

val install : sink -> unit
(** Makes [sink] the process-wide recording target.  Replaces any
    previously installed sink (which keeps its data). *)

val uninstall : unit -> unit
(** Stops recording; instruments return to the one-branch fast path. *)

val installed : unit -> sink option
(** The currently installed sink, in one atomic load. *)

val enabled : unit -> bool

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], and restores the previously
    installed sink (or none) even if [f] raises. *)

val now_ns : unit -> int
(** The monotonic clock (CLOCK_MONOTONIC), in nanoseconds.  Never goes
    backwards; unrelated to wall time. *)

val now_ticks : unit -> int
(** The cheapest available time source (raw TSC on x86, the monotonic
    clock elsewhere), for quantities that are only ever {e summed} and
    reported later: readings are raw ticks, converted to ns at report
    time against a lazily calibrated factor.  A read costs a few ns
    where {!now_ns} costs ~30; never goes backwards on one core, not
    comparable across hosts or reboots. *)

val ticks_to_ns : int -> int
(** Converts a {!now_ticks} difference to nanoseconds.  First call
    calibrates (~200 us spin); report paths only. *)

module Trace = Trace
(** Request-lifecycle tracing and the per-domain flight recorder; see
    {!Trace}. *)

type recorder
(** One domain's recording handle for the installed sink: fetch once
    with {!recorder}, then {!Counter.record}/{!Histogram.record}
    through it.  Instrument sites that record several values per event
    pay the sink lookup once instead of per value.  Do not hold one
    across domains or across sink changes. *)

val recorder : unit -> recorder option
(** The calling domain's recorder for the installed sink, or [None]
    when telemetry is off. *)

(** Monotone counters. *)
module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Registers (or looks up) the counter named [name].  Instruments
      are cheap process-wide handles; create them once at module
      initialisation, not per event.  [help] becomes the metric's
      Prometheus [# HELP] line (a generic one is emitted otherwise). *)

  val incr : ?by:int -> t -> unit
  (** Adds [by] (default 1) to the counter in the current domain's
      collector of the installed sink; no-op when no sink is
      installed.  [by] must be non-negative (counters are monotone). *)

  val record : recorder -> t -> int -> unit
  (** [record r c by] adds [by] through an already-fetched recorder. *)
end

(** Latency/size histograms over fixed log-spaced (power-of-two)
    buckets: bucket [i] counts values in [[2{^i}, 2{^i+1})], with
    bucket 0 absorbing values [<= 1] and the last bucket absorbing
    everything beyond. *)
module Histogram : sig
  type t

  val bucket_count : int
  (** Number of buckets (32). *)

  val make : ?help:string -> string -> t
  (** See {!Counter.make} for [help]. *)

  val observe : t -> int -> unit
  (** Records one value (clamped to [0] below).  No-op when no sink is
      installed. *)

  val record : recorder -> t -> int -> unit
  (** [record r h v] observes [v] through an already-fetched recorder. *)
end

(** Monotonic-clock spans: time a region and record the elapsed
    nanoseconds into a histogram. *)
module Span : sig
  val record : Histogram.t -> (unit -> 'a) -> 'a
  (** [record h f] runs [f] and observes its wall duration in [h].
      When no sink is installed, [f] runs untimed — the span costs one
      branch. *)
end

(** Dense per-rule statistic blocks for compiled scan plans.

    A scanner registers its rule-id vector once at compile time
    ({!Rules.define}); each scanning domain then obtains a dense block
    of per-rule arrays ({!Rules.block}) and updates them by rule index
    — no hashing or allocation per rule on the hot path. *)
module Rules : sig
  type def
  (** An immutable registration of a rule-id vector.  Part of the
      compiled scanner value: domain-safe to share. *)

  val define : string array -> def

  val ids : def -> string array

  type block = {
    mutable scans : int;  (** scans recorded through this def *)
    time_ns : int array;  (** per-rule wall time, summed *)
    steps : int array;  (** per-rule backtracking steps, summed *)
    candidates : int array;  (** scans in which the prefilter passed the rule *)
    matched : int array;  (** raw pattern matches *)
    suppressed : int array;  (** matches dropped by the suppress pattern *)
    findings : int array;  (** findings actually reported *)
    budget_exhausted : int array;  (** scans aborted by {!Rx.Budget_exceeded} *)
  }

  val block : sink -> def -> block
  (** The current domain's block for [def] under [sink], created on
      first use.  One int-keyed table lookup per call; callers fetch it
      once per scan and then index arrays directly. *)
end

(** Merged, serializable snapshots. *)
module Report : sig
  type histogram = {
    h_name : string;
    h_count : int;
    h_sum : int;
    h_buckets : int array;  (** per-bucket counts, length {!Histogram.bucket_count} *)
  }

  type ruleset = {
    r_ids : string array;
    r_scans : int;
    r_block : Rules.block;  (** merged across domains *)
  }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    histograms : histogram list;  (** sorted by name *)
    rulesets : ruleset list;  (** in registration order *)
  }

  val escape : string -> string
  (** JSON string-content escaping (quotes, backslashes, control
      characters) — shared with downstream writers that embed report
      fields in their own documents. *)

  val of_sink : sink -> t
  (** Merges every domain collector of [sink].  Deterministic for
      deterministic inputs: entries are sorted, sums are
      order-independent.  Call after recording domains have quiesced
      (e.g. once parallel workers are joined). *)

  val to_json : t -> string
  (** The [--trace] document: ["patchitpy-telemetry/1"] schema with
      counters, histogram buckets and per-rule tables. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition format: counters as [_total] counters,
      histograms with cumulative [_bucket{le=...}] series, per-rule
      statistics as [rule]-labelled counters.  Every metric carries
      [# HELP] and [# TYPE] lines; label values use the exposition
      format's own escaping (backslash, quote, newline). *)
end

(* Request-lifecycle tracing: the flight recorder.

   Where the sibling [Telemetry] instruments aggregate (counters,
   histogram buckets — the per-request story is erased at record time),
   this module keeps it: each request builds one [record] of
   phase-decomposed spans plus point events, and [finish] publishes the
   record into the finishing domain's ring buffer.  Rings are
   fixed-size and overwrite-oldest, so tracing is "always on" in the
   serve daemon at bounded memory: the last N requests per domain are
   reconstructable after the fact, which is exactly what a latency
   regression investigation needs.

   Concurrency model, chosen so the hot path has no locks:

   - One ring per domain, created through [Domain.DLS] and registered
     in a global list (mutex, once per domain).  Only the owning domain
     pushes; pushing is a slot store plus a cursor bump.
   - A slot holds an immutable, fully-built [record] behind an
     [Atomic]: readers on other domains see whole records or stale
     ones, never torn ones.  The cursor is atomic too, so a reader can
     bound its walk; a push racing a snapshot can at worst substitute a
     newer complete record for an older one.
   - The builder [t] is single-owner by construction (it follows the
     request through the pipeline), so its mutable span/instant lists
     need no synchronization.  [mark]/[marked] is the one cross-domain
     handoff (submit thread stamps, worker reads) and rides on the
     happens-before edge of the queue transfer.

   Cost budget (the CI gate holds the scan bench to an absolute +4 us
   with tracing on): a traced request pays two clock reads and one
   small allocation at the edges, one clock read per span boundary,
   and nothing per worked byte.  The dominant term is none of those
   but the GC lifecycle of the published record itself — every record
   is retained by its ring slot until overwritten, so each one is
   promoted out of the minor heap and major-collected later, a
   near-constant 1-3 us per request that scales with live-heap size,
   not scan length.  That is why the gate is an absolute budget rather
   than a percentage of scan time.  With tracing off every hook is one
   atomic load and a branch. *)

external now_ns : unit -> (int[@untagged]) = "tele_now_ns" "tele_now_ns_unboxed"
[@@noalloc]

(* --- vocabulary ----------------------------------------------------------- *)

type phase =
  | Intake
  | Cache_lookup
  | Queue_wait
  | Dispatch
  | Scan
  | Rescan
  | Patch_round
  | Serialize
  | Write

type instant = Dfa_flush | Dfa_bail | Deadline_hit | Budget_exhausted

let phase_name = function
  | Intake -> "intake"
  | Cache_lookup -> "cache-lookup"
  | Queue_wait -> "queue-wait"
  | Dispatch -> "dispatch"
  | Scan -> "scan"
  | Rescan -> "rescan"
  | Patch_round -> "patch-round"
  | Serialize -> "serialize"
  | Write -> "write"

let instant_name = function
  | Dfa_flush -> "dfa-flush"
  | Dfa_bail -> "dfa-bail"
  | Deadline_hit -> "deadline"
  | Budget_exhausted -> "budget"

type span = { sp_phase : phase; sp_start : int; sp_stop : int }

type record = {
  tr_id : string;
  tr_kind : string;
  tr_seq : int;
  tr_domain : int;
  tr_start : int;
  tr_stop : int;
  tr_spans : span list;  (* ascending by sp_start *)
  tr_instants : (instant * int) list;  (* ascending by time *)
  tr_dropped : int;  (* instants beyond the per-record cap *)
  tr_minor_words : int;  (* minor-heap words allocated by the request *)
}

(* --- global switches ------------------------------------------------------ *)

let on = Atomic.make false
let default_capacity = 256
let ring_capacity = Atomic.make default_capacity
let seq_source = Atomic.make 0

(* Bumping the generation orphans every existing ring: domains lazily
   rebuild on their next push, so [reset] never races a writer. *)
let generation = Atomic.make 0

let enabled () = Atomic.get on

(* --- per-domain rings ----------------------------------------------------- *)

type ring = {
  r_domain : int;
  r_gen : int;
  r_slots : record option Atomic.t array;
  r_w : int Atomic.t;  (* records ever pushed; slot = w mod capacity *)
}

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let cell = Domain.DLS.get ring_key in
  let gen = Atomic.get generation in
  match !cell with
  | Some r when r.r_gen = gen -> r
  | _ ->
    let r =
      {
        r_domain = (Domain.self () :> int);
        r_gen = gen;
        r_slots =
          Array.init (Atomic.get ring_capacity) (fun _ -> Atomic.make None);
        r_w = Atomic.make 0;
      }
    in
    Mutex.protect rings_lock (fun () -> rings := r :: !rings);
    cell := Some r;
    r

let reset () =
  Atomic.incr generation;
  Atomic.set seq_source 0;
  Mutex.protect rings_lock (fun () -> rings := [])

let capacity () = Atomic.get ring_capacity

let enable ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Trace.enable: capacity must be >= 1"
  | Some c when c <> Atomic.get ring_capacity ->
    Atomic.set ring_capacity c;
    reset ()
  | Some _ | None -> ());
  Atomic.set on true

let disable () = Atomic.set on false

(* --- request builders ----------------------------------------------------- *)

type t = {
  b_id : string;
  b_kind : string;
  b_seq : int;
  b_start : int;
  mutable b_mark : int;  (* enqueue timestamp, see [mark] *)
  mutable b_spans : span list;  (* completion order, newest first *)
  mutable b_instants : (instant * int) list;  (* newest first *)
  mutable b_ninstants : int;
  mutable b_dropped : int;
  b_minor0 : float;
}

(* Instants can fire per search (a thrashing pattern flushes on every
   rule); the cap keeps a pathological request from growing its own
   trace without bound.  Drops are counted, never silent. *)
let max_instants = 128

let start ?at ~id ~kind () =
  if not (Atomic.get on) then None
  else
    let t0 = match at with Some t -> t | None -> now_ns () in
    Some
      {
        b_id = id;
        b_kind = kind;
        b_seq = Atomic.fetch_and_add seq_source 1;
        b_start = t0;
        b_mark = t0;
        b_spans = [];
        b_instants = [];
        b_ninstants = 0;
        b_dropped = 0;
        b_minor0 = Gc.minor_words ();
      }

let add_span b ph ~start ~stop =
  b.b_spans <- { sp_phase = ph; sp_start = start; sp_stop = stop } :: b.b_spans

let span b ph f =
  let t0 = now_ns () in
  match f () with
  | v ->
    add_span b ph ~start:t0 ~stop:(now_ns ());
    v
  | exception e ->
    add_span b ph ~start:t0 ~stop:(now_ns ());
    raise e

let instant b i =
  if b.b_ninstants >= max_instants then b.b_dropped <- b.b_dropped + 1
  else begin
    b.b_instants <- (i, now_ns ()) :: b.b_instants;
    b.b_ninstants <- b.b_ninstants + 1
  end

let mark b = b.b_mark <- now_ns ()
let marked b = b.b_mark

(* --- the ambient builder -------------------------------------------------- *)

(* The builder the current domain is executing a request for, so deep
   instrumentation sites (scanner, patcher, rx) attach spans without
   the builder being threaded through every signature.  Checked behind
   the [on] flag first: with tracing off an ambient hook is one atomic
   load and a branch, with tracing on but no request in progress it
   adds one DLS read. *)
let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_current b f =
  let cell = Domain.DLS.get current_key in
  let previous = !cell in
  cell := Some b;
  Fun.protect ~finally:(fun () -> cell := previous) f

let current () =
  if not (Atomic.get on) then None else !(Domain.DLS.get current_key)

let ambient_span ph f =
  match current () with None -> f () | Some b -> span b ph f

let ambient_instant i =
  match current () with None -> () | Some b -> instant b i

(* --- publishing ----------------------------------------------------------- *)

(* [finish] must run on one thread at a time per domain: the pool calls
   it from worker domains (one request at a time each), the CLI and
   bench from their single driving thread.  Systhreads sharing a domain
   would interleave pushes benignly (records are immutable; at worst a
   slot is written twice before the cursor moves), but no caller does
   that today. *)
let finish b =
  let stop = now_ns () in
  let record =
    {
      tr_id = b.b_id;
      tr_kind = b.b_kind;
      tr_seq = b.b_seq;
      tr_domain = (Domain.self () :> int);
      tr_start = b.b_start;
      tr_stop = stop;
      tr_spans =
        List.sort
          (fun a b -> compare (a.sp_start, a.sp_stop) (b.sp_start, b.sp_stop))
          b.b_spans;
      tr_instants = List.rev b.b_instants;
      tr_dropped = b.b_dropped;
      tr_minor_words = int_of_float (Gc.minor_words () -. b.b_minor0);
    }
  in
  let r = my_ring () in
  let w = Atomic.get r.r_w in
  Atomic.set r.r_slots.(w mod Array.length r.r_slots) (Some record);
  Atomic.set r.r_w (w + 1)

let with_request ~id ~kind f =
  match start ~id ~kind () with
  | None -> f ()
  | Some b ->
    with_current b (fun () -> Fun.protect ~finally:(fun () -> finish b) f)

(* --- snapshots ------------------------------------------------------------ *)

let ring_records r =
  let cap = Array.length r.r_slots in
  let w = Atomic.get r.r_w in
  let lo = if w > cap then w - cap else 0 in
  let rec gather i acc =
    if i < lo then acc
    else
      match Atomic.get r.r_slots.(i mod cap) with
      | None -> gather (i - 1) acc
      | Some record -> gather (i - 1) (record :: acc)
  in
  gather (w - 1) []

let records () =
  let rings = Mutex.protect rings_lock (fun () -> !rings) in
  List.concat_map ring_records rings
  |> List.sort (fun a b -> compare a.tr_seq b.tr_seq)

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

let total_ns r = r.tr_stop - r.tr_start

let phase_ns r ph =
  List.fold_left
    (fun acc s -> if s.sp_phase = ph then acc + (s.sp_stop - s.sp_start) else acc)
    0 r.tr_spans

let queue_wait_ns r = phase_ns r Queue_wait

(* Time attributable to the server itself: everything but the wait for
   a worker and the front-end parse. *)
let service_ns r =
  max 0 (total_ns r - queue_wait_ns r - phase_ns r Intake)

let last n =
  let all = records () in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let slowest n =
  records ()
  |> List.sort (fun a b -> compare (total_ns b) (total_ns a))
  |> take n

(* --- exporters ------------------------------------------------------------ *)

(* Identical to [Telemetry.Report.escape]; re-stated because the parent
   module depends on this one. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schema = "patchitpy-trace/1"

(* Timestamps are exported relative to the earliest record in the dump:
   raw monotonic readings mean nothing across hosts, and Perfetto
   renders from zero. *)
let base_of = function
  | [] -> 0
  | records -> List.fold_left (fun acc r -> min acc r.tr_start) max_int records

let to_chrome ?(extra = []) records =
  let t0 = base_of records in
  let buf = Buffer.create 4096 in
  let us t = float_of_int (t - t0) /. 1000.0 in
  let dur a b = float_of_int (b - a) /. 1000.0 in
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iter
    (fun r ->
      let id = json_escape r.tr_id in
      event
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"id\":\"%s\",\"seq\":%d,\"minorWords\":%d,\"droppedInstants\":%d}}"
           (json_escape r.tr_kind) (us r.tr_start)
           (dur r.tr_start r.tr_stop)
           r.tr_domain id r.tr_seq r.tr_minor_words r.tr_dropped);
      List.iter
        (fun s ->
          event
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"id\":\"%s\"}}"
               (phase_name s.sp_phase) (us s.sp_start)
               (dur s.sp_start s.sp_stop)
               r.tr_domain id))
        r.tr_spans;
      List.iter
        (fun (i, at) ->
          event
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"instant\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{\"id\":\"%s\"}}"
               (instant_name i) (us at) r.tr_domain id))
        r.tr_instants)
    records;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"schema\":\"%s\",\"recordCount\":%d"
       schema (List.length records));
  List.iter
    (fun (key, raw_json) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (json_escape key) raw_json))
    extra;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* One record per line.  The record's own start stays absolute
   (monotonic ns — orderable within the dump); span and instant offsets
   are relative to it, which is the compact form and what the analysis
   scripts want anyway. *)
let record_to_ndjson r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"%s\",\"id\":\"%s\",\"kind\":\"%s\",\"seq\":%d,\"domain\":%d,\"startNs\":%d,\"durNs\":%d,\"minorWords\":%d,\"droppedInstants\":%d,\"spans\":["
       schema (json_escape r.tr_id) (json_escape r.tr_kind) r.tr_seq
       r.tr_domain r.tr_start (total_ns r) r.tr_minor_words r.tr_dropped);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"phase\":\"%s\",\"startNs\":%d,\"durNs\":%d}"
           (phase_name s.sp_phase)
           (s.sp_start - r.tr_start)
           (s.sp_stop - s.sp_start)))
    r.tr_spans;
  Buffer.add_string buf "],\"instants\":[";
  List.iteri
    (fun i (ev, at) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"%s\",\"atNs\":%d}" (instant_name ev)
           (at - r.tr_start)))
    r.tr_instants;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_ndjson records =
  String.concat "" (List.map (fun r -> record_to_ndjson r ^ "\n") records)

(** Request-lifecycle tracing and the flight recorder.

    One {!record} per request: phase-decomposed {!span}s (intake →
    queue wait → dispatch → scan → rescan/patch rounds → serialize →
    write) plus point events ({!instant}: DFA cache flushes and bails,
    deadline and budget trips), published on {!finish} into the
    finishing domain's fixed-size, overwrite-oldest ring buffer.  The
    recorder is cheap enough to leave always on in the serve daemon
    (the CI gate holds the scan bench to ≤ 2% with tracing on); the
    last [capacity] requests per domain stay reconstructable after the
    fact.

    {2 Usage shape}

    The component that owns a request creates a builder ({!start} or
    {!with_request}), times its own phases with {!add_span}/{!span},
    and installs the builder as the domain's ambient one
    ({!with_current}) while executing, so deep instrumentation sites —
    scanner, patcher, regex engine — attach spans and instants through
    {!ambient_span}/{!ambient_instant} with no builder in their
    signatures.  With tracing {!disable}d every hook is one atomic load
    and a branch.

    Readers ({!records}, {!last}, {!slowest}) may run concurrently with
    writers from any domain: slots hold immutable records behind
    atomics, so snapshots see whole records or miss them, never torn
    ones. *)

type phase =
  | Intake  (** front-end protocol decode *)
  | Cache_lookup  (** result-cache probe between intake and submit *)
  | Queue_wait  (** submit to worker pop *)
  | Dispatch  (** worker pop to execution start *)
  | Scan  (** full scan ([Scanner.scan_state]) *)
  | Rescan  (** incremental rescan *)
  | Patch_round  (** one patcher fix round advancing the scan state *)
  | Serialize  (** response body construction *)
  | Write  (** delivery back to the front-end *)

type instant =
  | Dfa_flush  (** a lazy-DFA transition cache flushed (pressure) *)
  | Dfa_bail  (** the DFA tier gave up; search re-ran on the backtracker *)
  | Deadline_hit  (** [Rx.Deadline_exceeded] raised *)
  | Budget_exhausted  (** [Rx.Budget_exceeded] surfaced *)

val phase_name : phase -> string
(** Stable wire names: ["intake"], ["cache-lookup"], ["queue-wait"],
    ["dispatch"], ["scan"], ["rescan"], ["patch-round"], ["serialize"],
    ["write"]. *)

val instant_name : instant -> string
(** ["dfa-flush"], ["dfa-bail"], ["deadline"], ["budget"]. *)

type span = { sp_phase : phase; sp_start : int; sp_stop : int }
(** Monotonic-clock ns ({!Telemetry.now_ns} readings). *)

type record = {
  tr_id : string;  (** request id (protocol id, or file path for the CLI) *)
  tr_kind : string;  (** ["scan"], ["patch"], ... *)
  tr_seq : int;  (** global admission order across domains *)
  tr_domain : int;  (** domain that executed (and recorded) the request *)
  tr_start : int;
  tr_stop : int;
  tr_spans : span list;  (** ascending by [sp_start] *)
  tr_instants : (instant * int) list;  (** ascending by time *)
  tr_dropped : int;  (** instants dropped beyond the per-record cap (128) *)
  tr_minor_words : int;  (** minor-heap words the request allocated *)
}

(** {2 Switches} *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turns the recorder on.  [capacity] (default 256) is the per-domain
    ring size in records; passing a different capacity than the current
    one implies {!reset}.  Idempotent and cheap when already on.
    @raise Invalid_argument when [capacity < 1]. *)

val disable : unit -> unit
(** Hooks return to the one-branch fast path.  Recorded rings are kept
    (still readable) until {!reset}. *)

val reset : unit -> unit
(** Drops every ring and restarts the sequence counter.  Safe against
    concurrent writers: their rings are orphaned, not mutated, and they
    rebuild on their next publish. *)

val capacity : unit -> int

val now_ns : unit -> int
(** The tracing clock (same monotonic source as {!Telemetry.now_ns}),
    for callers that stamp span edges themselves ({!add_span}). *)

(** {2 Building one request's record} *)

type t
(** A request's record under construction.  Single-owner: exactly one
    thread appends at a time (the builder follows the request through
    the pipeline; the queue handoff is the synchronization point). *)

val start : ?at:int -> id:string -> kind:string -> unit -> t option
(** A new builder, or [None] when tracing is off.  [at] backdates the
    request start (the front-end reads the clock before decoding, then
    creates the builder after — the id is only known then). *)

val add_span : t -> phase -> start:int -> stop:int -> unit
(** Attach an explicitly-timed span ({!now_ns} readings). *)

val span : t -> phase -> (unit -> 'a) -> 'a
(** Times [f] and attaches the span (also when [f] raises). *)

val instant : t -> instant -> unit
(** Attach a point event at the current time.  At most 128 per record;
    overflow increments [tr_dropped] instead. *)

val mark : t -> unit
(** Stamp the enqueue time: the submitter calls it right before the
    queue push, the worker turns it into the queue-wait span. *)

val marked : t -> int

val finish : t -> unit
(** Seal the record and publish it into the calling domain's ring.
    Call exactly once, from the domain that executed the request. *)

(** {2 The ambient builder} *)

val with_current : t -> (unit -> 'a) -> 'a
(** Runs [f] with [t] installed as this domain's ambient builder
    (restored on exit, also on raise). *)

val current : unit -> t option
(** The ambient builder, or [None] when tracing is off or no request
    is executing on this domain. *)

val ambient_span : phase -> (unit -> 'a) -> 'a
(** {!span} against the ambient builder; just runs [f] when there is
    none.  The deep-instrumentation entry point. *)

val ambient_instant : instant -> unit

val with_request : id:string -> kind:string -> (unit -> 'a) -> 'a
(** [start] + [with_current] + [finish]: wraps one synchronous request
    end to end (the CLI and bench path).  Just runs [f] when tracing
    is off. *)

(** {2 Reading the recorder} *)

val records : unit -> record list
(** Every live record across all domain rings, ascending [tr_seq].
    Safe concurrently with writers. *)

val last : int -> record list
(** The [n] most recent records (by admission order). *)

val slowest : int -> record list
(** The [n] slowest records by total duration, slowest first. *)

val total_ns : record -> int
val phase_ns : record -> phase -> int
(** Summed duration of that phase's spans. *)

val queue_wait_ns : record -> int

val service_ns : record -> int
(** [total - queue-wait - intake]: time attributable to execution. *)

(** {2 Exporters} *)

val to_chrome : ?extra:(string * string) list -> record list -> string
(** One single-line Chrome [trace_event] JSON document (loadable in
    Perfetto / [chrome://tracing]): an ["X"] event per record and per
    span, an ["i"] event per instant, [tid] = domain.  Timestamps are
    microseconds relative to the earliest record.  [extra] entries are
    spliced into [otherData] as [(key, raw JSON)] — the CLI embeds the
    aggregate telemetry report there. *)

val to_ndjson : record list -> string
(** One compact JSON object per line (schema [patchitpy-trace/1]):
    record fields, spans and instants with offsets relative to the
    record start.  The machine-analysis format. *)
